#include "core/composable_coreset.h"

#include "core/gmm.h"
#include "data/dataset.h"
#include "util/rng.h"

namespace fdm {

Result<std::vector<size_t>> ComposableCoresetDm(
    const Dataset& dataset, size_t k,
    const ComposableCoresetOptions& options) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (dataset.size() == 0) return Status::InvalidArgument("empty dataset");
  if (options.num_blocks == 0) {
    return Status::InvalidArgument("num_blocks must be positive");
  }

  // Shard assignment: round-robin over a seeded permutation — an
  // arbitrary-but-reproducible partition, as the composable-coreset
  // guarantee demands nothing of the split.
  const std::vector<size_t> order =
      StreamOrder(dataset.size(), options.shard_seed);
  const size_t blocks = std::min(options.num_blocks, dataset.size());
  std::vector<std::vector<size_t>> shard(blocks);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    shard[pos % blocks].push_back(order[pos]);
  }

  // Map: GMM(block, k) per block; the union is the composed coreset.
  std::vector<size_t> coreset;
  coreset.reserve(blocks * k);
  for (const auto& block : shard) {
    const std::vector<size_t> local = GreedyGmm(dataset, block, k);
    coreset.insert(coreset.end(), local.begin(), local.end());
  }

  // Reduce: GMM over the coreset union.
  return GreedyGmm(dataset, coreset, k);
}

}  // namespace fdm
