#include "core/streaming_dm.h"

#include <set>
#include <string>

#include "core/diversity.h"
#include "util/check.h"

namespace fdm {

StreamingDm::StreamingDm(int k, size_t dim, MetricKind metric,
                         GuessLadder ladder)
    : k_(k), dim_(dim), metric_(metric), ladder_(std::move(ladder)) {
  candidates_.reserve(ladder_.size());
  for (size_t j = 0; j < ladder_.size(); ++j) {
    candidates_.emplace_back(ladder_.At(j), static_cast<size_t>(k_), dim_);
  }
}

Result<StreamingDm> StreamingDm::Create(int k, size_t dim, MetricKind metric,
                                        const StreamingOptions& options) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " + std::to_string(k));
  }
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  auto ladder =
      GuessLadder::Create(options.d_min, options.d_max, options.epsilon);
  if (!ladder.ok()) return ladder.status();
  return StreamingDm(k, dim, metric, std::move(ladder.value()));
}

void StreamingDm::Observe(const StreamPoint& point) {
  FDM_DCHECK(point.coords.size() == dim_);
  ++observed_;
  for (auto& candidate : candidates_) {
    candidate.TryAdd(point, metric_);
  }
}

Result<Solution> StreamingDm::Solve() const {
  const StreamingCandidate* best = nullptr;
  double best_div = -1.0;
  for (const auto& candidate : candidates_) {
    if (!candidate.Full()) continue;
    const double div = k_ >= 2
                           ? MinPairwiseDistance(candidate.points(), metric_)
                           : candidate.mu();
    if (div > best_div) {
      best_div = div;
      best = &candidate;
    }
  }
  if (best == nullptr) {
    return Status::Infeasible(
        "no candidate reached k=" + std::to_string(k_) +
        " elements; the stream has fewer than k sufficiently distinct "
        "points or d_min is overestimated");
  }
  Solution solution(dim_);
  for (size_t i = 0; i < best->points().size(); ++i) {
    solution.points.Add(best->points().ViewAt(i));
  }
  solution.diversity = best_div;
  solution.mu = best->mu();
  return solution;
}

size_t StreamingDm::StoredElements() const {
  std::set<int64_t> distinct;
  for (const auto& candidate : candidates_) {
    for (size_t i = 0; i < candidate.points().size(); ++i) {
      distinct.insert(candidate.points().IdAt(i));
    }
  }
  return distinct.size();
}

}  // namespace fdm
