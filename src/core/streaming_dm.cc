#include "core/streaming_dm.h"

#include <set>
#include <string>

#include "core/batch_replay.h"
#include "core/diversity.h"
#include "core/snapshot_util.h"
#include "geo/point_buffer_io.h"
#include "util/binary_io.h"
#include "util/check.h"

namespace fdm {

StreamingDm::StreamingDm(int k, size_t dim, MetricKind metric,
                         GuessLadder ladder, int batch_threads,
                         int solve_threads)
    : k_(k),
      dim_(dim),
      metric_(metric),
      ladder_(std::move(ladder)),
      parallelism_(batch_threads),
      solve_parallelism_(solve_threads) {
  candidates_.reserve(ladder_.size());
  for (size_t j = 0; j < ladder_.size(); ++j) {
    candidates_.emplace_back(ladder_.At(j), static_cast<size_t>(k_), dim_);
  }
}

Result<StreamingDm> StreamingDm::Create(int k, size_t dim, MetricKind metric,
                                        const StreamingOptions& options) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " + std::to_string(k));
  }
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  auto ladder =
      GuessLadder::Create(options.d_min, options.d_max, options.epsilon);
  if (!ladder.ok()) return ladder.status();
  return StreamingDm(k, dim, metric, std::move(ladder.value()),
                     options.batch_threads, options.solve_threads);
}

bool StreamingDm::Observe(const StreamPoint& point) {
  FDM_DCHECK(point.coords.size() == dim_);
  ++observed_;
  size_t kept = 0;
  for (auto& candidate : candidates_) {
    if (candidate.TryAdd(point, metric_)) ++kept;
  }
  state_version_ += kept;
  return kept > 0;
}

size_t StreamingDm::ObserveBatch(std::span<const StreamPoint> raw_batch) {
  if (raw_batch.empty()) return 0;
  for (const StreamPoint& point : raw_batch) {
    FDM_DCHECK(point.coords.size() == dim_);
    (void)point;
  }
  observed_ += static_cast<int64_t>(raw_batch.size());
  const std::span<const StreamPoint> batch = packed_.Pack(raw_batch, dim_);
  // Rung-major replay through the shared engine (the group-free special
  // case: no group-specific candidates, so `num_groups = 0` and the
  // specific accessor is never invoked): each task owns one candidate and
  // replays the batch in stream order, so per-rung state evolves exactly
  // as under per-element Observe, with the full-rung skip and the
  // chunking-invariant kept counts in one place for all ladder sinks.
  rung_kept_.assign(candidates_.size(), 0);
  ReplayBatchRungMajor(
      parallelism_, candidates_.size(), /*num_groups=*/0, batch,
      /*by_group=*/nullptr, metric_,
      [&](size_t j) -> StreamingCandidate& { return candidates_[j]; },
      [&](int, size_t) -> StreamingCandidate& { return candidates_.front(); },
      rung_kept_.data());
  size_t mutations = 0;
  for (const size_t kept : rung_kept_) mutations += kept;
  state_version_ += mutations;
  return mutations;
}

Result<Solution> StreamingDm::Solve() const {
  // Phase 1 — per-candidate diversity, fanned out over `solve_threads`:
  // each task writes only its own slot, and `MinPairwiseDistance` touches
  // nothing but the candidate's points and local scratch. Phase 2 — the
  // winner scan — stays a sequential ascending-µ pass with strict `>`, so
  // the chosen rung (and hence the output) is bit-identical to the
  // sequential path at any thread count.
  std::vector<double> diversity(candidates_.size(), -1.0);
  std::vector<uint8_t> full(candidates_.size(), 0);
  solve_parallelism_.Run(candidates_.size(), [&](size_t j) {
    const StreamingCandidate& candidate = candidates_[j];
    if (!candidate.Full()) return;
    full[j] = 1;
    diversity[j] = k_ >= 2
                       ? MinPairwiseDistance(candidate.points(), metric_)
                       : candidate.mu();
  });
  const StreamingCandidate* best = nullptr;
  double best_div = -1.0;
  for (size_t j = 0; j < candidates_.size(); ++j) {
    if (!full[j]) continue;
    if (diversity[j] > best_div) {
      best_div = diversity[j];
      best = &candidates_[j];
    }
  }
  if (best == nullptr) {
    return Status::Infeasible(
        "no candidate reached k=" + std::to_string(k_) +
        " elements; the stream has fewer than k sufficiently distinct "
        "points or d_min is overestimated");
  }
  Solution solution(dim_);
  for (size_t i = 0; i < best->points().size(); ++i) {
    solution.points.Add(best->points().ViewAt(i));
  }
  solution.diversity = best_div;
  solution.mu = best->mu();
  return solution;
}

Status StreamingDm::Snapshot(SnapshotWriter& writer) const {
  writer.WriteString(kSnapshotTag);
  writer.WriteI32(k_);
  internal::WriteStreamingHeader(writer, dim_, metric_, ladder_,
                                 parallelism_.batch_threads(),
                                 solve_parallelism_.solve_threads());
  writer.WriteI64(observed_);
  writer.WriteU64(state_version_);
  writer.WriteU64(candidates_.size());
  for (const StreamingCandidate& candidate : candidates_) {
    SerializePointBuffer(writer, candidate.points());
  }
  return Status::Ok();
}

Result<StreamingDm> StreamingDm::Restore(SnapshotReader& reader) {
  if (!internal::ConsumeTag(reader, kSnapshotTag)) return reader.status();
  const int k = reader.ReadI32();
  const internal::StreamingHeader header =
      internal::ReadStreamingHeader(reader);
  const int64_t observed = reader.ReadI64();
  const uint64_t state_version = reader.ReadU64();
  const size_t rungs = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  // The guess ladder is a pure function of (d_min, d_max, ε), so Create
  // rebuilds the rung structure deterministically; the snapshot carries
  // only the retained points.
  auto created = Create(k, header.dim, header.metric, header.options);
  if (!created.ok()) return created.status();
  StreamingDm algo = std::move(created.value());
  if (rungs != algo.candidates_.size()) {
    reader.Fail("rung count " + std::to_string(rungs) +
                " does not match rebuilt ladder of " +
                std::to_string(algo.candidates_.size()));
    return reader.status();
  }
  for (StreamingCandidate& candidate : algo.candidates_) {
    internal::RestoreCandidatePoints(reader, candidate);
  }
  if (!reader.ok()) return reader.status();
  algo.observed_ = observed;
  algo.state_version_ = state_version;
  return algo;
}

size_t StreamingDm::StoredElements() const {
  std::set<int64_t> distinct;
  for (const auto& candidate : candidates_) {
    for (size_t i = 0; i < candidate.points().size(); ++i) {
      distinct.insert(candidate.points().IdAt(i));
    }
  }
  return distinct.size();
}

}  // namespace fdm
