#include "core/streaming_dm.h"

#include <set>
#include <string>

#include "core/diversity.h"
#include "util/check.h"

namespace fdm {

StreamingDm::StreamingDm(int k, size_t dim, MetricKind metric,
                         GuessLadder ladder, int batch_threads)
    : k_(k),
      dim_(dim),
      metric_(metric),
      ladder_(std::move(ladder)),
      parallelism_(batch_threads) {
  candidates_.reserve(ladder_.size());
  for (size_t j = 0; j < ladder_.size(); ++j) {
    candidates_.emplace_back(ladder_.At(j), static_cast<size_t>(k_), dim_);
  }
}

Result<StreamingDm> StreamingDm::Create(int k, size_t dim, MetricKind metric,
                                        const StreamingOptions& options) {
  if (k < 1) {
    return Status::InvalidArgument("k must be >= 1, got " + std::to_string(k));
  }
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  auto ladder =
      GuessLadder::Create(options.d_min, options.d_max, options.epsilon);
  if (!ladder.ok()) return ladder.status();
  return StreamingDm(k, dim, metric, std::move(ladder.value()),
                     options.batch_threads);
}

void StreamingDm::Observe(const StreamPoint& point) {
  FDM_DCHECK(point.coords.size() == dim_);
  ++observed_;
  for (auto& candidate : candidates_) {
    candidate.TryAdd(point, metric_);
  }
}

void StreamingDm::ObserveBatch(std::span<const StreamPoint> raw_batch) {
  if (raw_batch.empty()) return;
  for (const StreamPoint& point : raw_batch) {
    FDM_DCHECK(point.coords.size() == dim_);
    (void)point;
  }
  observed_ += static_cast<int64_t>(raw_batch.size());
  const std::span<const StreamPoint> batch = packed_.Pack(raw_batch, dim_);
  // Rung-major replay: each task owns one candidate and replays the batch
  // in stream order, so per-rung state evolves exactly as under
  // per-element Observe; rungs never share state. A full candidate stays
  // full forever, so a whole rung is skipped with one check per batch
  // (the per-element path pays that check per element).
  parallelism_.Run(candidates_.size(), [&](size_t j) {
    StreamingCandidate& candidate = candidates_[j];
    if (candidate.Full()) return;
    for (const StreamPoint& point : batch) {
      candidate.TryAdd(point, metric_);
    }
  });
}

Result<Solution> StreamingDm::Solve() const {
  const StreamingCandidate* best = nullptr;
  double best_div = -1.0;
  for (const auto& candidate : candidates_) {
    if (!candidate.Full()) continue;
    const double div = k_ >= 2
                           ? MinPairwiseDistance(candidate.points(), metric_)
                           : candidate.mu();
    if (div > best_div) {
      best_div = div;
      best = &candidate;
    }
  }
  if (best == nullptr) {
    return Status::Infeasible(
        "no candidate reached k=" + std::to_string(k_) +
        " elements; the stream has fewer than k sufficiently distinct "
        "points or d_min is overestimated");
  }
  Solution solution(dim_);
  for (size_t i = 0; i < best->points().size(); ++i) {
    solution.points.Add(best->points().ViewAt(i));
  }
  solution.diversity = best_div;
  solution.mu = best->mu();
  return solution;
}

size_t StreamingDm::StoredElements() const {
  std::set<int64_t> distinct;
  for (const auto& candidate : candidates_) {
    for (size_t i = 0; i < candidate.points().size(); ++i) {
      distinct.insert(candidate.points().IdAt(i));
    }
  }
  return distinct.size();
}

}  // namespace fdm
