#include "core/sfdm1.h"

#include <limits>
#include <optional>
#include <set>
#include <string>

#include "core/batch_replay.h"
#include "core/diversity.h"
#include "core/snapshot_util.h"
#include "geo/point_buffer_io.h"
#include "obs/metrics.h"
#include "util/binary_io.h"
#include "util/check.h"

namespace fdm {

namespace {

// Per-rung post-processing latency inside a cold Solve(), for both ladder
// algorithms (SFDM-1 balancing, SFDM-2 matroid intersection). Rung solves
// are µs–ms scale, so every sample is recorded (no 1/N sampling like the
// ingest-side rung-scan histogram needs).
obs::Histogram& RungSolveHist() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_solve_rung_ns", "per-rung post-processing latency in cold Solve()");
  return hist;
}

}  // namespace

Sfdm1::Sfdm1(FairnessConstraint constraint, size_t dim, MetricKind metric,
             GuessLadder ladder, int batch_threads, int solve_threads)
    : constraint_(std::move(constraint)),
      k_(constraint_.TotalK()),
      dim_(dim),
      metric_(metric),
      ladder_(std::move(ladder)),
      parallelism_(batch_threads),
      solve_parallelism_(solve_threads) {
  blind_.reserve(ladder_.size());
  for (int i = 0; i < 2; ++i) specific_[i].reserve(ladder_.size());
  for (size_t j = 0; j < ladder_.size(); ++j) {
    const double mu = ladder_.At(j);
    blind_.emplace_back(mu, static_cast<size_t>(k_), dim_);
    for (int i = 0; i < 2; ++i) {
      specific_[i].emplace_back(
          mu, static_cast<size_t>(constraint_.quotas[static_cast<size_t>(i)]),
          dim_);
    }
  }
}

Result<Sfdm1> Sfdm1::Create(const FairnessConstraint& constraint, size_t dim,
                            MetricKind metric,
                            const StreamingOptions& options) {
  if (Status s = constraint.Validate(); !s.ok()) return s;
  if (constraint.num_groups() != 2) {
    return Status::Unsupported(
        "SFDM1 requires exactly 2 groups, got " +
        std::to_string(constraint.num_groups()) + "; use SFDM2");
  }
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  auto ladder =
      GuessLadder::Create(options.d_min, options.d_max, options.epsilon);
  if (!ladder.ok()) return ladder.status();
  return Sfdm1(constraint, dim, metric, std::move(ladder.value()),
               options.batch_threads, options.solve_threads);
}

bool Sfdm1::Observe(const StreamPoint& point) {
  FDM_DCHECK(point.coords.size() == dim_);
  FDM_CHECK_MSG(point.group == 0 || point.group == 1,
                "SFDM1 stream element outside groups {0,1}");
  ++observed_;
  size_t kept = 0;
  for (size_t j = 0; j < ladder_.size(); ++j) {
    if (blind_[j].TryAdd(point, metric_)) ++kept;
    if (specific_[point.group][j].TryAdd(point, metric_)) ++kept;
  }
  state_version_ += kept;
  return kept > 0;
}

size_t Sfdm1::ObserveBatch(std::span<const StreamPoint> raw_batch) {
  if (raw_batch.empty()) return 0;
  for (const StreamPoint& point : raw_batch) {
    FDM_DCHECK(point.coords.size() == dim_);
    FDM_CHECK_MSG(point.group == 0 || point.group == 1,
                  "SFDM1 stream element outside groups {0,1}");
  }
  observed_ += static_cast<int64_t>(raw_batch.size());
  const std::span<const StreamPoint> batch = packed_.Pack(raw_batch, dim_);
  // Per-group positions, computed once and shared read-only by all rungs
  // (member scratch, reused across batches like packed_).
  for (auto& positions : by_group_) positions.clear();
  for (size_t t = 0; t < batch.size(); ++t) {
    by_group_[batch[t].group].push_back(t);
  }
  rung_kept_.assign(ladder_.size(), 0);
  ReplayBatchRungMajor(
      parallelism_, ladder_.size(), /*num_groups=*/2, batch, by_group_,
      metric_, [&](size_t j) -> StreamingCandidate& { return blind_[j]; },
      [&](int g, size_t j) -> StreamingCandidate& { return specific_[g][j]; },
      rung_kept_.data());
  size_t mutations = 0;
  for (const size_t kept : rung_kept_) mutations += kept;
  state_version_ += mutations;
  return mutations;
}

PointBuffer Sfdm1::BalancedCandidate(size_t j) const {
  // Work on a copy of the group-blind candidate so Solve() stays const and
  // repeatable mid-stream.
  PointBuffer working(dim_, static_cast<size_t>(k_) + 1);
  const PointBuffer& blind = blind_[j].points();
  for (size_t i = 0; i < blind.size(); ++i) working.Add(blind.ViewAt(i));

  const std::vector<int> counts = GroupCounts(working, 2);
  int under = -1;  // the under-filled group i_u, if any
  for (int g = 0; g < 2; ++g) {
    if (counts[static_cast<size_t>(g)] <
        constraint_.quotas[static_cast<size_t>(g)]) {
      under = g;
    }
  }
  if (under < 0) return working;  // already fair (|S_µ| = k and no deficit)

  const int quota_under = constraint_.quotas[static_cast<size_t>(under)];
  const PointBuffer& donors = specific_[under][j].points();

  // The under-filled side of `working`, mirrored into the kernel block
  // layout: both balancing loops scan only that side, so each scan becomes
  // one dispatched min-reduction instead of |working| scalar Metric calls.
  // The mirror holds the same point set as the scalar filter (donors join
  // it on insertion; victims are never in it), and `MinDistanceTo` is the
  // exact minimum of the same per-pair values (finishing the raw minimum
  // commutes with the monotone sqrt), so every argmax/argmin decision is
  // bit-identical to the scalar loops.
  PointBuffer under_side(dim_, static_cast<size_t>(k_) + 1);
  for (size_t i = 0; i < working.size(); ++i) {
    if (working.GroupAt(i) == under) under_side.Add(working.ViewAt(i));
  }

  // Algorithm 2, lines 12–14: insert the donor farthest from the selected
  // elements of the under-filled group, repeatedly.
  while (static_cast<int>(under_side.size()) < quota_under) {
    double best_distance = -1.0;
    size_t best_donor = donors.size();
    for (size_t d = 0; d < donors.size(); ++d) {
      if (working.ContainsId(donors.IdAt(d))) continue;
      // d(x, S_µ ∩ X_iu): +infinity when the group is empty in S_µ.
      const double dist = under_side.MinDistanceTo(donors.CoordsAt(d), metric_);
      if (dist > best_distance) {
        best_distance = dist;
        best_donor = d;
      }
    }
    FDM_CHECK_MSG(best_donor < donors.size(),
                  "SFDM1 balance: donor pool exhausted (U' membership "
                  "should prevent this)");
    working.Add(donors.ViewAt(best_donor));
    under_side.Add(donors.ViewAt(best_donor));
  }

  // Algorithm 2, lines 15–17: delete the other-group element closest to the
  // (augmented) under-filled side until |S_µ| = k.
  while (static_cast<int>(working.size()) > k_) {
    double best_distance = std::numeric_limits<double>::infinity();
    size_t victim = working.size();
    for (size_t i = 0; i < working.size(); ++i) {
      if (working.GroupAt(i) == under) continue;
      const double dist =
          under_side.MinDistanceTo(working.CoordsAt(i), metric_);
      if (dist < best_distance) {
        best_distance = dist;
        victim = i;
      }
    }
    FDM_CHECK(victim < working.size());
    working.RemoveSwap(victim);
  }
  return working;
}

Result<Solution> Sfdm1::Solve() const {
  const size_t rungs = ladder_.size();
  // Phase 1 — balance every eligible rung, fanned out over `solve_threads`:
  // task j reads only rung j's candidates and writes only slot j
  // (`BalancedCandidate` works on copies, so concurrent tasks share nothing
  // mutable). Phase 2 — the best-rung selection — stays a sequential
  // ascending-µ scan with strict `>`, so the winner (and hence the output)
  // is bit-identical to the sequential path at any thread count.
  std::vector<std::optional<PointBuffer>> balanced(rungs);
  std::vector<double> diversity(rungs, -1.0);
  solve_parallelism_.Run(rungs, [&](size_t j) {
    // U' = {µ : |S_µ| = k ∧ |S_µ,i| = k_i for both i} (line 9).
    if (!blind_[j].Full() || !specific_[0][j].Full() ||
        !specific_[1][j].Full()) {
      return;
    }
    obs::ScopedTimer timer(RungSolveHist());
    balanced[j] = BalancedCandidate(j);
    FDM_DCHECK(SatisfiesQuotas(*balanced[j], constraint_.quotas));
    diversity[j] = MinPairwiseDistance(*balanced[j], metric_);
  });
  Solution best(dim_);
  best.diversity = -1.0;
  bool found = false;
  for (size_t j = 0; j < rungs; ++j) {
    if (!balanced[j].has_value()) continue;
    if (diversity[j] > best.diversity) {
      best.points = std::move(*balanced[j]);
      best.diversity = diversity[j];
      best.mu = ladder_.At(j);
      found = true;
    }
  }
  if (!found) {
    return Status::Infeasible(
        "no guess µ has full group-blind and group-specific candidates; "
        "stream too small or d_min overestimated");
  }
  return best;
}

size_t Sfdm1::StoredElements() const {
  std::set<int64_t> distinct;
  auto collect = [&distinct](const std::vector<StreamingCandidate>& cands) {
    for (const auto& c : cands) {
      for (size_t i = 0; i < c.points().size(); ++i) {
        distinct.insert(c.points().IdAt(i));
      }
    }
  };
  collect(blind_);
  collect(specific_[0]);
  collect(specific_[1]);
  return distinct.size();
}

Status Sfdm1::Snapshot(SnapshotWriter& writer) const {
  writer.WriteString(kSnapshotTag);
  writer.WriteU64(constraint_.quotas.size());
  for (const int quota : constraint_.quotas) writer.WriteI32(quota);
  internal::WriteStreamingHeader(writer, dim_, metric_, ladder_,
                                 parallelism_.batch_threads(),
                                 solve_parallelism_.solve_threads());
  writer.WriteI64(observed_);
  writer.WriteU64(state_version_);
  writer.WriteU64(ladder_.size());
  // Rung-major: S_µj, then S_µj,0, S_µj,1 — the read side mirrors this.
  for (size_t j = 0; j < ladder_.size(); ++j) {
    SerializePointBuffer(writer, blind_[j].points());
    SerializePointBuffer(writer, specific_[0][j].points());
    SerializePointBuffer(writer, specific_[1][j].points());
  }
  return Status::Ok();
}

Result<Sfdm1> Sfdm1::Restore(SnapshotReader& reader) {
  if (!internal::ConsumeTag(reader, kSnapshotTag)) return reader.status();
  FairnessConstraint constraint;
  const size_t num_groups = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  if (num_groups != 2) {
    reader.Fail("SFDM1 snapshot must have 2 groups, has " +
                std::to_string(num_groups));
    return reader.status();
  }
  for (size_t g = 0; g < num_groups; ++g) {
    constraint.quotas.push_back(reader.ReadI32());
  }
  const internal::StreamingHeader header =
      internal::ReadStreamingHeader(reader);
  const int64_t observed = reader.ReadI64();
  const uint64_t state_version = reader.ReadU64();
  const size_t rungs = reader.ReadU64();
  if (!reader.ok()) return reader.status();
  auto created = Create(constraint, header.dim, header.metric, header.options);
  if (!created.ok()) return created.status();
  Sfdm1 algo = std::move(created.value());
  if (rungs != algo.ladder_.size()) {
    reader.Fail("rung count " + std::to_string(rungs) +
                " does not match rebuilt ladder of " +
                std::to_string(algo.ladder_.size()));
    return reader.status();
  }
  for (size_t j = 0; j < rungs; ++j) {
    internal::RestoreCandidatePoints(reader, algo.blind_[j]);
    internal::RestoreCandidatePoints(reader, algo.specific_[0][j]);
    internal::RestoreCandidatePoints(reader, algo.specific_[1][j]);
  }
  if (!reader.ok()) return reader.status();
  algo.observed_ = observed;
  algo.state_version_ = state_version;
  return algo;
}

}  // namespace fdm
