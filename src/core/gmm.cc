#include "core/gmm.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/kernel_workspace.h"
#include "util/check.h"

namespace fdm {

std::vector<size_t> GreedyGmm(const Dataset& dataset,
                              std::span<const size_t> universe, size_t k,
                              std::span<const size_t> warm_start,
                              size_t start_index) {
  std::vector<size_t> selected;
  if (k == 0 || universe.empty()) return selected;
  const Metric metric = dataset.metric();
  constexpr double kExcluded = -std::numeric_limits<double>::infinity();

  // d(x, selected ∪ warm_start) for every universe row, updated
  // incrementally — the standard O(|universe|·k) farthest-first traversal.
  // Excluded (already chosen) positions are pinned to -infinity.
  std::vector<double> distance(universe.size(),
                               std::numeric_limits<double>::infinity());
  const std::unordered_set<size_t> warm(warm_start.begin(), warm_start.end());
  for (size_t i = 0; i < universe.size(); ++i) {
    if (warm.count(universe[i]) > 0) distance[i] = kExcluded;
  }
  // The universe mirrored into the kernel block layout once per call: each
  // relax pass is then one dispatched per-point scan (raw distances from
  // the picked row to every universe row) instead of |universe| scalar
  // Metric calls. Entry `i` of the scan is bit-identical to
  // `metric.RawDistance(universe[i], row)` — same per-lane arithmetic
  // order, and the squared diffs are sign-insensitive — so finishing it
  // reproduces the scalar relaxation value bit for bit and the
  // farthest-first selection order is unchanged.
  KernelWorkspace workspace(dataset.dim(), universe.size());
  workspace.AssignRows(dataset, universe);
  auto relax_against = [&](size_t row) {
    const std::span<const double> raw =
        workspace.RawDistancesTo(dataset.Point(row), metric);
    for (size_t i = 0; i < universe.size(); ++i) {
      if (distance[i] == kExcluded) continue;
      const double d = metric.FinishDistance(raw[i]);
      if (d < distance[i]) distance[i] = d;
    }
  };
  for (const size_t row : warm_start) relax_against(row);

  selected.reserve(std::min(k, universe.size()));
  while (selected.size() < k) {
    size_t pick_pos = universe.size();
    if (selected.empty() && warm_start.empty()) {
      FDM_CHECK(start_index < universe.size());
      pick_pos = start_index;
    } else {
      double best = kExcluded;
      for (size_t i = 0; i < universe.size(); ++i) {
        if (distance[i] > best) {
          best = distance[i];
          pick_pos = i;
        }
      }
      // Everything selectable is exhausted (duplicate coordinates keep
      // distance 0 and stay selectable; only exclusion stops us).
      if (pick_pos == universe.size() || best == kExcluded) break;
    }
    const size_t row = universe[pick_pos];
    selected.push_back(row);
    distance[pick_pos] = kExcluded;
    relax_against(row);
  }
  return selected;
}

std::vector<size_t> GreedyGmm(const Dataset& dataset, size_t k) {
  std::vector<size_t> universe(dataset.size());
  for (size_t i = 0; i < universe.size(); ++i) universe[i] = i;
  return GreedyGmm(dataset, universe, k);
}

std::vector<size_t> RowsOfGroup(const Dataset& dataset, int32_t group) {
  std::vector<size_t> rows;
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (dataset.GroupOf(i) == group) rows.push_back(i);
  }
  return rows;
}

}  // namespace fdm
