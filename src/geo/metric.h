#ifndef FDM_GEO_METRIC_H_
#define FDM_GEO_METRIC_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "util/check.h"
#include "util/status.h"

namespace fdm {

/// The distance metrics used in the paper's evaluation (Table I):
/// Euclidean (Adult, synthetic), Manhattan (CelebA, Census), and angular
/// (Lyrics). All three satisfy the triangle inequality, which the
/// approximation guarantees rely on (the tests verify this property on
/// random triples).
enum class MetricKind {
  kEuclidean,
  kManhattan,
  kAngular,
};

/// Parses `"euclidean"` / `"manhattan"` / `"angular"` (case-sensitive).
Result<MetricKind> ParseMetricKind(std::string_view name);

/// Human-readable metric name.
std::string_view MetricKindName(MetricKind kind);

namespace internal {

inline double EuclideanDistance(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

inline double ManhattanDistance(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    acc += std::fabs(a[i] - b[i]);
  }
  return acc;
}

/// Angle between vectors, `arccos(<a,b> / (|a||b|))`, in `[0, pi]`.
/// A zero vector is treated as orthogonal to everything (distance pi/2),
/// matching the convention of the authors' evaluation code for LDA vectors
/// (which are never zero in practice).
inline double AngularDistance(const double* a, const double* b, size_t dim) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return std::acos(0.0);
  double cosine = dot / (std::sqrt(na) * std::sqrt(nb));
  if (cosine > 1.0) cosine = 1.0;
  if (cosine < -1.0) cosine = -1.0;
  return std::acos(cosine);
}

}  // namespace internal

/// Value-type distance functor.
///
/// Dispatch is a predictable switch rather than a virtual call so the hot
/// loops (streaming candidate scans, GMM farthest-point updates) inline the
/// kernels; `MetricKind` is fixed per dataset so the branch is
/// perfectly predicted.
class Metric {
 public:
  explicit Metric(MetricKind kind) : kind_(kind) {}

  MetricKind kind() const { return kind_; }
  std::string_view name() const { return MetricKindName(kind_); }

  /// Distance between two points of dimension `dim`.
  double operator()(const double* a, const double* b, size_t dim) const {
    switch (kind_) {
      case MetricKind::kEuclidean:
        return internal::EuclideanDistance(a, b, dim);
      case MetricKind::kManhattan:
        return internal::ManhattanDistance(a, b, dim);
      case MetricKind::kAngular:
        return internal::AngularDistance(a, b, dim);
    }
    FDM_CHECK_MSG(false, "unreachable metric kind");
    return 0.0;
  }

  /// Span overload; the spans must have equal size.
  double operator()(std::span<const double> a, std::span<const double> b) const {
    FDM_DCHECK(a.size() == b.size());
    return (*this)(a.data(), b.data(), a.size());
  }

 private:
  MetricKind kind_;
};

}  // namespace fdm

#endif  // FDM_GEO_METRIC_H_
