#ifndef FDM_GEO_METRIC_H_
#define FDM_GEO_METRIC_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "util/check.h"
#include "util/status.h"

namespace fdm {

/// The distance metrics used in the paper's evaluation (Table I):
/// Euclidean (Adult, synthetic), Manhattan (CelebA, Census), and angular
/// (Lyrics). All three satisfy the triangle inequality, which the
/// approximation guarantees rely on (the tests verify this property on
/// random triples).
enum class MetricKind {
  kEuclidean,
  kManhattan,
  kAngular,
};

/// Parses `"euclidean"` / `"manhattan"` / `"angular"` (case-sensitive).
Result<MetricKind> ParseMetricKind(std::string_view name);

/// Human-readable metric name.
std::string_view MetricKindName(MetricKind kind);

namespace internal {

inline double EuclideanSquaredDistance(const double* a, const double* b,
                                       size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

inline double ManhattanDistance(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    acc += std::fabs(a[i] - b[i]);
  }
  return acc;
}

/// Squared L2 norm, accumulated in index order. Shared by the scalar
/// angular kernel and the norm-caching one-to-many scan in `PointBuffer`,
/// so cached norms are bit-identical to freshly computed ones.
inline double SquaredNorm(const double* a, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * a[i];
  return acc;
}

/// The angular epilogue: maps a dot product and the two squared norms to
/// the angle. Factored out so the norm-caching buffer kernel reproduces
/// the scalar kernel's arithmetic exactly (same operations, same order —
/// the equivalence tests require bit-identical results).
inline double AngularFromDotAndNorms(double dot, double na, double nb) {
  if (na == 0.0 || nb == 0.0) return std::acos(0.0);
  double cosine = dot / (std::sqrt(na) * std::sqrt(nb));
  if (cosine > 1.0) cosine = 1.0;
  if (cosine < -1.0) cosine = -1.0;
  return std::acos(cosine);
}

/// Angle between vectors, `arccos(<a,b> / (|a||b|))`, in `[0, pi]`.
/// A zero vector is treated as orthogonal to everything (distance pi/2),
/// matching the convention of the authors' evaluation code for LDA vectors
/// (which are never zero in practice).
inline double AngularDistance(const double* a, const double* b, size_t dim) {
  double dot = 0.0;
  for (size_t i = 0; i < dim; ++i) dot += a[i] * b[i];
  return AngularFromDotAndNorms(dot, SquaredNorm(a, dim), SquaredNorm(b, dim));
}

}  // namespace internal

/// Value-type distance functor.
///
/// Dispatch is a predictable switch rather than a virtual call so the hot
/// loops (streaming candidate scans, GMM farthest-point updates) inline the
/// kernels; `MetricKind` is fixed per dataset so the branch is
/// perfectly predicted.
class Metric {
 public:
  explicit Metric(MetricKind kind) : kind_(kind) {}

  MetricKind kind() const { return kind_; }
  std::string_view name() const { return MetricKindName(kind_); }

  /// Distance between two points of dimension `dim` (the raw kernel plus
  /// its final normalization — one dispatch switch for all paths).
  double operator()(const double* a, const double* b, size_t dim) const {
    return FinishDistance(RawDistance(a, b, dim));
  }

  /// Span overload; the spans must have equal size.
  double operator()(std::span<const double> a, std::span<const double> b) const {
    FDM_DCHECK(a.size() == b.size());
    return (*this)(a.data(), b.data(), a.size());
  }

  /// Distance in *raw space* — a monotone surrogate that skips the final
  /// normalization of the kernel. For Euclidean this is the squared
  /// distance (no `sqrt` on the hot path); for Manhattan and angular it is
  /// the distance itself. Raw values order identically to true distances,
  /// so threshold tests and argmin scans are exact when the threshold is
  /// mapped with `PrepareThreshold` and results with `FinishDistance`.
  double RawDistance(const double* a, const double* b, size_t dim) const {
    switch (kind_) {
      case MetricKind::kEuclidean:
        return internal::EuclideanSquaredDistance(a, b, dim);
      case MetricKind::kManhattan:
        return internal::ManhattanDistance(a, b, dim);
      case MetricKind::kAngular:
        return internal::AngularDistance(a, b, dim);
    }
    FDM_CHECK_MSG(false, "unreachable metric kind");
    return 0.0;
  }

  /// Maps a true-distance threshold `t >= 0` into raw space:
  /// `RawDistance(a, b) < PrepareThreshold(t)` decides `d(a, b) < t`
  /// comparing squared values for Euclidean. The decision can differ from
  /// the sqrt form only when `d` is within ~1 ulp of `t` (rounding of
  /// `t*t` vs `sqrt`), which is below the noise floor of the distances
  /// themselves; within one build the rule is deterministic and the
  /// candidate invariant (`pairwise >= µ` up to that rounding) holds.
  double PrepareThreshold(double t) const {
    return kind_ == MetricKind::kEuclidean ? t * t : t;
  }

  /// Maps a raw-space value back to a true distance
  /// (`FinishDistance(RawDistance(a, b)) == d(a, b)`).
  double FinishDistance(double raw) const {
    return kind_ == MetricKind::kEuclidean ? std::sqrt(raw) : raw;
  }

 private:
  MetricKind kind_;
};

}  // namespace fdm

#endif  // FDM_GEO_METRIC_H_
