#ifndef FDM_GEO_POINT_BUFFER_IO_H_
#define FDM_GEO_POINT_BUFFER_IO_H_

#include "geo/point_buffer.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace fdm {

/// Snapshot serialization of a `PointBuffer` — the storage unit behind
/// every streaming candidate, so this is the byte layout most of a sink
/// snapshot consists of. Structure-of-arrays, mirroring the in-memory
/// layout with one length-prefixed bulk array per field:
///
///   dim u64 | ids i64-span | groups i32-span | coords double-span
///
/// (span = u64 count + raw little-endian elements; the three counts must
/// agree — size, size, size·dim). Coordinates round-trip bit-exactly (raw
/// IEEE-754 doubles), which is what makes a restored sink's `Solve()`
/// bit-identical to the uninterrupted run.
void SerializePointBuffer(SnapshotWriter& writer, const PointBuffer& buffer);

/// Appends the serialized points into `buffer`, which must be constructed
/// with the matching dimension (typically empty). On malformed input the
/// reader's sticky status is set and `buffer` is left partially filled —
/// callers check `reader.ok()` before using the result.
void DeserializePointBuffer(SnapshotReader& reader, PointBuffer& buffer);

}  // namespace fdm

#endif  // FDM_GEO_POINT_BUFFER_IO_H_
