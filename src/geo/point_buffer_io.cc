#include "geo/point_buffer_io.h"

#include <string>
#include <vector>

namespace fdm {

void SerializePointBuffer(SnapshotWriter& writer, const PointBuffer& buffer) {
  writer.WriteU64(buffer.dim());
  writer.WriteI64Span(buffer.ids());
  writer.WriteI32Span(buffer.groups());
  writer.WriteDoubleSpan(buffer.coords());
}

void DeserializePointBuffer(SnapshotReader& reader, PointBuffer& buffer) {
  const uint64_t dim = reader.ReadU64();
  if (!reader.ok()) return;
  if (dim != buffer.dim()) {
    reader.Fail("point buffer dim " + std::to_string(dim) +
                " does not match expected " + std::to_string(buffer.dim()));
    return;
  }
  const std::vector<int64_t> ids = reader.ReadI64Vec();
  const std::vector<int32_t> groups = reader.ReadI32Vec();
  const std::vector<double> coords = reader.ReadDoubleVec();
  if (!reader.ok()) return;
  if (groups.size() != ids.size() || coords.size() != ids.size() * dim) {
    reader.Fail("point buffer arrays disagree: " + std::to_string(ids.size()) +
                " ids, " + std::to_string(groups.size()) + " groups, " +
                std::to_string(coords.size()) + " coords for dim " +
                std::to_string(dim));
    return;
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    buffer.Add(StreamPoint{
        ids[i], groups[i],
        std::span<const double>(coords.data() + i * dim, dim)});
  }
}

}  // namespace fdm
