#include "geo/metric.h"

namespace fdm {

Result<MetricKind> ParseMetricKind(std::string_view name) {
  if (name == "euclidean") return MetricKind::kEuclidean;
  if (name == "manhattan") return MetricKind::kManhattan;
  if (name == "angular") return MetricKind::kAngular;
  return Status::InvalidArgument("unknown metric: " + std::string(name));
}

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kEuclidean:
      return "euclidean";
    case MetricKind::kManhattan:
      return "manhattan";
    case MetricKind::kAngular:
      return "angular";
  }
  return "unknown";
}

}  // namespace fdm
