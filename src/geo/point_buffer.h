#ifndef FDM_GEO_POINT_BUFFER_H_
#define FDM_GEO_POINT_BUFFER_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "geo/metric.h"
#include "geo/simd/kernel_dispatch.h"
#include "obs/metrics.h"
#include "util/aligned.h"
#include "util/check.h"

namespace fdm {

/// A single element as seen by a streaming algorithm: an opaque id (its
/// position in the dataset), its demographic group, and a *borrowed* view of
/// its coordinates. Streaming algorithms must copy the coordinates if they
/// retain the element — the span is only valid during the `Observe` call,
/// which is what makes the memory accounting of the algorithms honest.
struct StreamPoint {
  int64_t id = -1;
  int32_t group = 0;
  std::span<const double> coords;
};

/// Bounded, owning, structure-of-arrays point store.
///
/// This is the storage behind every streaming candidate `S_µ`. Coordinates
/// are kept in two mirrored layouts, maintained together by every mutation:
///
///  * `coords_` — point-major and contiguous, the layout behind the span
///    API (`CoordsAt`/`ViewAt`/`coords()`) and the snapshot format. Spans
///    into it stay valid until the buffer is mutated, which post-processing
///    and serialization rely on.
///  * `blocks_` — the kernel layout: blocks of 8 points, dimension-major
///    within a block (coordinate `d` of point `i` at
///    `blocks_[(i/8)·dim·8 + d·8 + i%8]`), 64-byte aligned rows, with the
///    padding lanes of the final block *replicating the last real point*.
///    The one-to-many distance kernels (`geo/simd/`) scan this layout with
///    full-width vector loads and no tail masking anywhere — the replicated
///    padding can tie with a real lane in a min reduction but never win it.
///
/// The duplication costs one extra copy of the coordinates; buffers hold at
/// most `capacity · dim` doubles (streaming memory stays O(capacity · dim),
/// independent of the stream length), and in exchange every existing span
/// consumer keeps working while the admission hot path runs at SIMD speed.
///
/// Each stored point's squared L2 norm is cached on insertion (one extra
/// double per point, padded and replicated like the coordinates), so the
/// angular one-to-many kernel never recomputes stored-point norms during a
/// scan. The cache is maintained eagerly for every metric — filling it
/// lazily on the first angular scan would turn the const scan paths into
/// writers and race under the serving layer's shared-lock concurrent
/// queries; the eager cost is one O(dim) pass per insertion, dwarfed by the
/// admission scan that accompanies it.
class PointBuffer {
 public:
  /// `dim` is the point dimension; `capacity` reserves space (may be 0 for
  /// unbounded use by offline helpers).
  PointBuffer(size_t dim, size_t capacity) : dim_(dim) {
    FDM_CHECK(dim > 0);
    coords_.reserve(capacity * dim);
    ids_.reserve(capacity);
    groups_.reserve(capacity);
    const size_t blocks = simd::PointBlockCount(capacity);
    blocks_.reserve(blocks * simd::PointBlockStride(dim));
    norms_.reserve(blocks * simd::kPointBlockLanes);
  }

  /// Copies `p` into the buffer.
  void Add(const StreamPoint& p) {
    FDM_DCHECK(p.coords.size() == dim_);
    const size_t i = size();
    coords_.insert(coords_.end(), p.coords.begin(), p.coords.end());
    ids_.push_back(p.id);
    groups_.push_back(p.group);
    const double norm = internal::SquaredNorm(p.coords.data(), dim_);
    const size_t lane = i % simd::kPointBlockLanes;
    if (lane == 0) {
      blocks_.resize(blocks_.size() + simd::PointBlockStride(dim_));
      norms_.resize(norms_.size() + simd::kPointBlockLanes);
    }
    // The new point is now the last point: write its lane and replicate it
    // into every padding lane after it (see the class comment).
    double* block =
        blocks_.data() + (i / simd::kPointBlockLanes) * simd::PointBlockStride(dim_);
    for (size_t d = 0; d < dim_; ++d) {
      double* row = block + d * simd::kPointBlockLanes;
      for (size_t l = lane; l < simd::kPointBlockLanes; ++l) row[l] = p.coords[d];
    }
    const size_t norm_base = (i / simd::kPointBlockLanes) * simd::kPointBlockLanes;
    for (size_t l = lane; l < simd::kPointBlockLanes; ++l) {
      norms_[norm_base + l] = norm;
    }
  }

  /// Batched-append fast path (the fused admission+insert of
  /// `StreamingCandidate::TryAddBatch`): identical to `Add` except the
  /// padding lanes after the new point are NOT rewritten — only the
  /// point's own lane is stored, so a run of accepted points writes each
  /// coordinate once instead of re-replicating the tail per insertion.
  /// The block layout is INVALID for kernel scans until `SealPadding()`
  /// runs; callers must seal before any `MinDistanceTo`/`AllAtLeast`/
  /// `RawDistancesToAll`/`MinRawDistanceToMany` call touches the buffer.
  /// (A freshly resized block row is zero-filled, and a zero padding lane
  /// *can* win a min reduction — unlike the replicated-last-point padding
  /// the kernels are specified against.) The point-major span API stays
  /// valid throughout.
  void AddDeferPadding(const StreamPoint& p) {
    FDM_DCHECK(p.coords.size() == dim_);
    const size_t i = size();
    coords_.insert(coords_.end(), p.coords.begin(), p.coords.end());
    ids_.push_back(p.id);
    groups_.push_back(p.group);
    const double norm = internal::SquaredNorm(p.coords.data(), dim_);
    const size_t lane = i % simd::kPointBlockLanes;
    if (lane == 0) {
      blocks_.resize(blocks_.size() + simd::PointBlockStride(dim_));
      norms_.resize(norms_.size() + simd::kPointBlockLanes);
    }
    double* block = blocks_.data() +
                    (i / simd::kPointBlockLanes) * simd::PointBlockStride(dim_);
    for (size_t d = 0; d < dim_; ++d) {
      block[d * simd::kPointBlockLanes + lane] = p.coords[d];
    }
    norms_[i] = norm;
  }

  /// Restores the replicate-last-point padding invariant after a run of
  /// `AddDeferPadding` calls. Idempotent; O(dim) on the final block only.
  void SealPadding() { RepadTail(); }

  /// Removes the point at `index` (order is not preserved: the last point
  /// moves into the hole — O(dim), including re-padding the block layout).
  void RemoveSwap(size_t index) {
    FDM_DCHECK(index < size());
    const size_t last = size() - 1;
    if (index != last) {
      for (size_t d = 0; d < dim_; ++d) {
        coords_[index * dim_ + d] = coords_[last * dim_ + d];
      }
      ids_[index] = ids_[last];
      groups_[index] = groups_[last];
      norms_[index] = norms_[last];
      // Mirror the move into the block layout.
      double* block = blocks_.data() +
                      (index / simd::kPointBlockLanes) * simd::PointBlockStride(dim_);
      const size_t lane = index % simd::kPointBlockLanes;
      for (size_t d = 0; d < dim_; ++d) {
        block[d * simd::kPointBlockLanes + lane] = coords_[index * dim_ + d];
      }
    }
    coords_.resize(last * dim_);
    ids_.pop_back();
    groups_.pop_back();
    const size_t blocks = simd::PointBlockCount(last);
    blocks_.resize(blocks * simd::PointBlockStride(dim_));
    norms_.resize(blocks * simd::kPointBlockLanes);
    RepadTail();
  }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  size_t dim() const { return dim_; }

  std::span<const double> CoordsAt(size_t i) const {
    FDM_DCHECK(i < size());
    return {coords_.data() + i * dim_, dim_};
  }
  int64_t IdAt(size_t i) const { return ids_[i]; }
  int32_t GroupAt(size_t i) const { return groups_[i]; }
  /// Cached squared L2 norm of the point at `i` (bit-identical to
  /// `internal::SquaredNorm` over its coordinates).
  double SquaredNormAt(size_t i) const {
    FDM_DCHECK(i < size());
    return norms_[i];
  }

  /// Whole-buffer views of the SoA arrays (serialization and bulk scans).
  std::span<const int64_t> ids() const { return ids_; }
  std::span<const int32_t> groups() const { return groups_; }
  std::span<const double> coords() const { return coords_; }

  /// `d(x, S)` — distance from `x` to its nearest neighbour in the buffer;
  /// +infinity when empty (so "add if `d(x,S) >= µ`" admits the first point).
  ///
  /// One-to-many kernel over the block layout through the runtime-dispatched
  /// SIMD table (`geo/simd/kernel_dispatch.h`): the scan runs in the
  /// metric's raw space (squared distances for Euclidean — no `sqrt` per
  /// stored point) and normalizes once at the end.
  double MinDistanceTo(std::span<const double> x, const Metric& metric) const {
    const double raw = MinRawDistanceTo(x, metric);
    return raw == std::numeric_limits<double>::infinity()
               ? raw
               : metric.FinishDistance(raw);
  }

  /// As `MinDistanceTo`, but stops early once a distance below `threshold`
  /// is seen (the streaming insert only needs to know whether
  /// `d(x,S) >= µ`, not the exact value). The comparison happens in raw
  /// space against the prepared threshold — for Euclidean the hot path
  /// compares squared distances against `µ²` and never calls `sqrt`.
  bool AllAtLeast(std::span<const double> x, const Metric& metric,
                  double threshold) const {
    const double prepared = metric.PrepareThreshold(threshold);
    return RawScan(x, metric, /*stop_below=*/prepared) >= prepared;
  }

  /// Raw-space variant of `MinDistanceTo` (see `Metric::RawDistance`);
  /// +infinity when empty. Callers comparing against a true-distance
  /// threshold must map it with `PrepareThreshold` first.
  double MinRawDistanceTo(std::span<const double> x,
                          const Metric& metric) const {
    return RawScan(x, metric,
                   /*stop_below=*/-std::numeric_limits<double>::infinity());
  }

  /// Batch form of `MinRawDistanceTo`: raw min distances from `Q` query
  /// points to the whole buffer in one pass over the stored blocks, with a
  /// per-query raw-space early-exit threshold (`stop_below[q]`, already
  /// mapped with `PrepareThreshold`; pass -infinity for exact minima).
  ///
  /// `out[q]` receives the exact minimum unless the query's running
  /// minimum crossed `stop_below[q]` mid-scan — then the query stopped
  /// scanning and `out[q]` holds some value `< stop_below[q]`, so the
  /// threshold decision `out[q] >= stop_below[q]` always matches a full
  /// `AllAtLeast` scan. The batched admission path (`TryAddBatch`) is the
  /// caller; amortizing the stored-block loads across the batch is what
  /// the kernel subsystem buys on `ObserveBatch`.
  void MinRawDistanceToMany(std::span<const double* const> queries,
                            const Metric& metric,
                            std::span<const double> stop_below,
                            std::span<double> out) const {
    FDM_DCHECK(queries.size() == out.size());
    FDM_DCHECK(queries.size() == stop_below.size());
    if (queries.empty()) return;
    if (empty()) {
      for (double& o : out) o = std::numeric_limits<double>::infinity();
      return;
    }
#ifndef FDM_NO_METRICS
    // Per-shape kernel invocation counters, one uncontended bump per scan
    // (~1-2ns against a multi-microsecond scan). The cell reference is
    // resolved once per thread and cached — no registry lookup on the hot
    // path. Explicitly compiled out under FDM_NO_METRICS: these sit on
    // the admission hot path the micro_obs overhead gate measures.
    static thread_local std::atomic<uint64_t>& scans =
        obs::MetricsRegistry::Global()
            .GetCounter("fdm_kernel_many_scans_total",
                        "many-to-many admission scans (MinRawDistanceToMany)")
            .ThreadLocalCell();
    obs::BumpCell(scans);
#endif
    const simd::KernelOps& ops = simd::ActiveKernelOps();
    const simd::PointBlockView view = BlockView();
    // Worklist scratch (and angular query norms), reused across calls;
    // thread-local because candidates replay batches on pool threads.
    thread_local std::vector<uint32_t> scratch;
    thread_local std::vector<double> query_norms;
    if (scratch.size() < queries.size()) scratch.resize(queries.size());
    simd::ManyQueryArgs args;
    args.queries = queries.data();
    args.nq = queries.size();
    args.stop_below = stop_below.data();
    args.out_min_raw = out.data();
    args.scratch = scratch.data();
    switch (metric.kind()) {
      case MetricKind::kEuclidean:
        ops.euclidean_min_many(view, args);
        return;
      case MetricKind::kManhattan:
        ops.manhattan_min_many(view, args);
        return;
      case MetricKind::kAngular:
        query_norms.resize(queries.size());
        for (size_t q = 0; q < queries.size(); ++q) {
          query_norms[q] = internal::SquaredNorm(queries[q], dim_);
        }
        args.query_norms = query_norms.data();
        ops.angular_min_many(view, args);
        return;
    }
    FDM_CHECK_MSG(false, "unreachable metric kind");
  }

  /// Offline per-point kernel: the raw distance from `x` to *every* stored
  /// point, through the dispatched `*_dists` ops. `out` is resized to the
  /// padded lane count (`PointBlockCount(size()) * 8`); entries `[0,
  /// size())` are the raw distances in storage order — bit-identical to
  /// `metric.RawDistance(x, CoordsAt(i))` on every target — and the
  /// remaining entries are padding-lane values the caller must ignore.
  /// This is the row primitive of the offline Solve paths (GMM relax
  /// scans, clustering rows, pairwise sums), which need every distance
  /// rather than the minimum; there is no early exit.
  void RawDistancesToAll(std::span<const double> x, const Metric& metric,
                         std::vector<double>& out) const {
    out.resize(simd::PointBlockCount(size()) * simd::kPointBlockLanes);
    if (empty()) return;
#ifndef FDM_NO_METRICS
    static thread_local std::atomic<uint64_t>& scans =
        obs::MetricsRegistry::Global()
            .GetCounter("fdm_kernel_dists_scans_total",
                        "one-to-all full-distance scans (RawDistancesToAll)")
            .ThreadLocalCell();
    obs::BumpCell(scans);
#endif
    const simd::KernelOps& ops = simd::ActiveKernelOps();
    const simd::PointBlockView view = BlockView();
    switch (metric.kind()) {
      case MetricKind::kEuclidean:
        ops.euclidean_dists(view, x.data(), out.data());
        return;
      case MetricKind::kManhattan:
        ops.manhattan_dists(view, x.data(), out.data());
        return;
      case MetricKind::kAngular:
        ops.angular_dists(view, x.data(),
                          internal::SquaredNorm(x.data(), dim_), out.data());
        return;
    }
    FDM_CHECK_MSG(false, "unreachable metric kind");
  }

  /// The point at `i` as a `StreamPoint` view (valid until mutation).
  StreamPoint ViewAt(size_t i) const {
    return StreamPoint{IdAt(i), GroupAt(i), CoordsAt(i)};
  }

  /// True iff the buffer holds an element with this id (O(n) scan; buffers
  /// are k-sized so this is cheap and only used in post-processing).
  bool ContainsId(int64_t id) const {
    for (const int64_t have : ids_) {
      if (have == id) return true;
    }
    return false;
  }

  void Clear() {
    coords_.clear();
    ids_.clear();
    groups_.clear();
    blocks_.clear();
    norms_.clear();
  }

 private:
  /// The kernel-facing view of the block layout (requires `size() >= 1`).
  simd::PointBlockView BlockView() const {
    return simd::PointBlockView{blocks_.data(), norms_.data(), size(), dim_};
  }

  /// The one-to-many scan behind `AllAtLeast`/`MinRawDistanceTo`, routed
  /// through the runtime-dispatched kernel table. Returns the minimum raw
  /// distance seen but may give up as soon as the running minimum drops
  /// below `stop_below` (pass -inf for an exact full scan). Every dispatch
  /// target performs the scalar `Metric::RawDistance` arithmetic per lane
  /// in the same order, so results are bit-identical to a point-at-a-time
  /// scan and across targets (the kernel equivalence tests enforce both,
  /// for all three metrics and every target reachable on the machine).
  double RawScan(std::span<const double> x, const Metric& metric,
                 double stop_below) const {
    if (empty()) return std::numeric_limits<double>::infinity();
#ifndef FDM_NO_METRICS
    static thread_local std::atomic<uint64_t>& scans =
        obs::MetricsRegistry::Global()
            .GetCounter("fdm_kernel_min_scans_total",
                        "one-to-many min-distance scans (RawScan)")
            .ThreadLocalCell();
    obs::BumpCell(scans);
#endif
    const simd::KernelOps& ops = simd::ActiveKernelOps();
    const simd::PointBlockView view = BlockView();
    switch (metric.kind()) {
      case MetricKind::kEuclidean:
        return ops.euclidean_min(view, x.data(), stop_below);
      case MetricKind::kManhattan:
        return ops.manhattan_min(view, x.data(), stop_below);
      case MetricKind::kAngular:
        // Query norm once per scan; stored norms from the cache.
        return ops.angular_min(view, x.data(),
                               internal::SquaredNorm(x.data(), dim_),
                               stop_below);
    }
    FDM_CHECK_MSG(false, "unreachable metric kind");
    return 0.0;
  }

  /// Restores the replicate-last-point invariant of the final block's
  /// padding lanes (coordinates and norms) after a removal.
  void RepadTail() {
    const size_t n = size();
    if (n == 0) return;
    const size_t last = n - 1;
    const size_t lane = last % simd::kPointBlockLanes;
    double* block = blocks_.data() +
                    (last / simd::kPointBlockLanes) * simd::PointBlockStride(dim_);
    for (size_t d = 0; d < dim_; ++d) {
      const double v = coords_[last * dim_ + d];
      double* row = block + d * simd::kPointBlockLanes;
      for (size_t l = lane + 1; l < simd::kPointBlockLanes; ++l) row[l] = v;
    }
    const size_t norm_base =
        (last / simd::kPointBlockLanes) * simd::kPointBlockLanes;
    for (size_t l = lane + 1; l < simd::kPointBlockLanes; ++l) {
      norms_[norm_base + l] = norms_[last];
    }
  }

  size_t dim_;
  std::vector<double> coords_;  // point-major, the span/serde layout
  std::vector<int64_t> ids_;
  std::vector<int32_t> groups_;
  /// Kernel layouts (see class comment): padded AoSoA coordinates and the
  /// matching per-point squared L2 norms, both 64-byte aligned so the
  /// kernels' full-width aligned loads hold on every row.
  std::vector<double, AlignedAllocator<double>> blocks_;
  std::vector<double, AlignedAllocator<double>> norms_;
};

}  // namespace fdm

#endif  // FDM_GEO_POINT_BUFFER_H_
