#ifndef FDM_GEO_POINT_BUFFER_H_
#define FDM_GEO_POINT_BUFFER_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "geo/metric.h"
#include "util/check.h"

namespace fdm {

/// A single element as seen by a streaming algorithm: an opaque id (its
/// position in the dataset), its demographic group, and a *borrowed* view of
/// its coordinates. Streaming algorithms must copy the coordinates if they
/// retain the element — the span is only valid during the `Observe` call,
/// which is what makes the memory accounting of the algorithms honest.
struct StreamPoint {
  int64_t id = -1;
  int32_t group = 0;
  std::span<const double> coords;
};

/// Bounded, owning, structure-of-arrays point store.
///
/// This is the storage behind every streaming candidate `S_µ`: coordinates
/// are copied into one contiguous buffer so the inner distance scans are
/// cache-friendly, and the buffer never references the dataset (streaming
/// memory is O(capacity · dim), independent of the stream length).
///
/// Each stored point's squared L2 norm is cached on insertion (one extra
/// double per point), so the angular one-to-many kernel never recomputes
/// stored-point norms during a scan. The cache is maintained eagerly for
/// every metric — filling it lazily on the first angular scan would turn
/// the const scan paths into writers and race under the serving layer's
/// shared-lock concurrent queries; the eager cost is one O(dim) pass per
/// insertion, dwarfed by the admission scan that accompanies it.
class PointBuffer {
 public:
  /// `dim` is the point dimension; `capacity` reserves space (may be 0 for
  /// unbounded use by offline helpers).
  PointBuffer(size_t dim, size_t capacity) : dim_(dim) {
    FDM_CHECK(dim > 0);
    coords_.reserve(capacity * dim);
    ids_.reserve(capacity);
    groups_.reserve(capacity);
    norms_.reserve(capacity);
  }

  /// Copies `p` into the buffer.
  void Add(const StreamPoint& p) {
    FDM_DCHECK(p.coords.size() == dim_);
    coords_.insert(coords_.end(), p.coords.begin(), p.coords.end());
    ids_.push_back(p.id);
    groups_.push_back(p.group);
    norms_.push_back(internal::SquaredNorm(p.coords.data(), dim_));
  }

  /// Removes the point at `index` (order is not preserved: the last point
  /// moves into the hole — O(dim)).
  void RemoveSwap(size_t index) {
    FDM_DCHECK(index < size());
    const size_t last = size() - 1;
    if (index != last) {
      for (size_t d = 0; d < dim_; ++d) {
        coords_[index * dim_ + d] = coords_[last * dim_ + d];
      }
      ids_[index] = ids_[last];
      groups_[index] = groups_[last];
      norms_[index] = norms_[last];
    }
    coords_.resize(last * dim_);
    ids_.pop_back();
    groups_.pop_back();
    norms_.pop_back();
  }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  size_t dim() const { return dim_; }

  std::span<const double> CoordsAt(size_t i) const {
    FDM_DCHECK(i < size());
    return {coords_.data() + i * dim_, dim_};
  }
  int64_t IdAt(size_t i) const { return ids_[i]; }
  int32_t GroupAt(size_t i) const { return groups_[i]; }
  /// Cached squared L2 norm of the point at `i` (bit-identical to
  /// `internal::SquaredNorm` over its coordinates).
  double SquaredNormAt(size_t i) const { return norms_[i]; }

  /// Whole-buffer views of the SoA arrays (serialization and bulk scans).
  std::span<const int64_t> ids() const { return ids_; }
  std::span<const int32_t> groups() const { return groups_; }
  std::span<const double> coords() const { return coords_; }

  /// `d(x, S)` — distance from `x` to its nearest neighbour in the buffer;
  /// +infinity when empty (so "add if `d(x,S) >= µ`" admits the first point).
  ///
  /// One-to-many kernel over the SoA coordinate block: the scan runs in the
  /// metric's raw space (squared distances for Euclidean — no `sqrt` per
  /// stored point) and normalizes once at the end.
  double MinDistanceTo(std::span<const double> x, const Metric& metric) const {
    const double raw = MinRawDistanceTo(x, metric);
    return raw == std::numeric_limits<double>::infinity()
               ? raw
               : metric.FinishDistance(raw);
  }

  /// As `MinDistanceTo`, but stops early once a distance below `threshold`
  /// is seen (the streaming insert only needs to know whether
  /// `d(x,S) >= µ`, not the exact value). The comparison happens in raw
  /// space against the prepared threshold — for Euclidean the hot path
  /// compares squared distances against `µ²` and never calls `sqrt`.
  bool AllAtLeast(std::span<const double> x, const Metric& metric,
                  double threshold) const {
    const double prepared = metric.PrepareThreshold(threshold);
    return BlockedRawScan(x, metric, /*stop_below=*/prepared) >= prepared;
  }

  /// Raw-space variant of `MinDistanceTo` (see `Metric::RawDistance`);
  /// +infinity when empty. Callers comparing against a true-distance
  /// threshold must map it with `PrepareThreshold` first.
  double MinRawDistanceTo(std::span<const double> x,
                          const Metric& metric) const {
    return BlockedRawScan(x, metric,
                          /*stop_below=*/-std::numeric_limits<double>::infinity());
  }

  /// The point at `i` as a `StreamPoint` view (valid until mutation).
  StreamPoint ViewAt(size_t i) const {
    return StreamPoint{IdAt(i), GroupAt(i), CoordsAt(i)};
  }

  /// True iff the buffer holds an element with this id (O(n) scan; buffers
  /// are k-sized so this is cheap and only used in post-processing).
  bool ContainsId(int64_t id) const {
    for (const int64_t have : ids_) {
      if (have == id) return true;
    }
    return false;
  }

  void Clear() {
    coords_.clear();
    ids_.clear();
    groups_.clear();
    norms_.clear();
  }

 private:
  /// The one-to-many kernel behind `AllAtLeast`/`MinRawDistanceTo`: a
  /// blocked raw-space scan of the SoA buffer (branch-light, vectorizable
  /// inner loop), returning the minimum raw distance seen but giving up as
  /// soon as a running block minimum drops below `stop_below` (pass -inf
  /// for an exact full scan).
  ///
  /// Dispatches once per scan to a per-metric kernel — Euclidean compares
  /// squared distances (no `sqrt` per stored point), Manhattan runs the
  /// same blocked scan over the abs-sum kernel, and angular reuses the
  /// cached per-point squared norms and computes the query norm once per
  /// scan instead of once per stored point. Every kernel performs the
  /// scalar `Metric::RawDistance` arithmetic in the same order, so results
  /// are bit-identical to a point-at-a-time scan (the kernel equivalence
  /// tests enforce this for all three metrics).
  double BlockedRawScan(std::span<const double> x, const Metric& metric,
                        double stop_below) const {
    switch (metric.kind()) {
      case MetricKind::kEuclidean:
        return BlockedScanWith(
            x, stop_below, [this](const double* q, size_t i) {
              return internal::EuclideanSquaredDistance(
                  q, coords_.data() + i * dim_, dim_);
            });
      case MetricKind::kManhattan:
        return BlockedScanWith(
            x, stop_below, [this](const double* q, size_t i) {
              return internal::ManhattanDistance(q, coords_.data() + i * dim_,
                                                 dim_);
            });
      case MetricKind::kAngular: {
        // Query norm once per scan; stored norms from the cache.
        const double query_norm = internal::SquaredNorm(x.data(), dim_);
        return BlockedScanWith(
            x, stop_below, [this, query_norm](const double* q, size_t i) {
              const double* p = coords_.data() + i * dim_;
              double dot = 0.0;
              for (size_t d = 0; d < dim_; ++d) dot += q[d] * p[d];
              return internal::AngularFromDotAndNorms(dot, query_norm,
                                                      norms_[i]);
            });
      }
    }
    FDM_CHECK_MSG(false, "unreachable metric kind");
    return 0.0;
  }

  /// The blocked min/early-exit skeleton shared by the per-metric kernels;
  /// `raw_at(query, i)` returns the raw distance to stored point `i`.
  template <typename RawAt>
  double BlockedScanWith(std::span<const double> x, double stop_below,
                         RawAt&& raw_at) const {
    double best = std::numeric_limits<double>::infinity();
    const size_t n = size();
    constexpr size_t kBlock = 8;
    size_t i = 0;
    for (; i + kBlock <= n; i += kBlock) {
      double block_min = std::numeric_limits<double>::infinity();
      for (size_t b = 0; b < kBlock; ++b) {
        const double raw = raw_at(x.data(), i + b);
        if (raw < block_min) block_min = raw;
      }
      if (block_min < best) best = block_min;
      if (best < stop_below) return best;
    }
    for (; i < n; ++i) {
      const double raw = raw_at(x.data(), i);
      if (raw < best) best = raw;
      if (best < stop_below) return best;
    }
    return best;
  }

  size_t dim_;
  std::vector<double> coords_;
  std::vector<int64_t> ids_;
  std::vector<int32_t> groups_;
  std::vector<double> norms_;  // per-point squared L2 norms (angular kernel)
};

}  // namespace fdm

#endif  // FDM_GEO_POINT_BUFFER_H_
