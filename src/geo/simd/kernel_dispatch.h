#ifndef FDM_GEO_SIMD_KERNEL_DISPATCH_H_
#define FDM_GEO_SIMD_KERNEL_DISPATCH_H_

#include <string_view>
#include <vector>

#include "geo/simd/kernel_types.h"

namespace fdm::simd {

/// Runtime CPU-feature dispatch for the distance kernels.
///
/// The table is resolved exactly once per process, in this order:
///   1. every compiled-in target the running CPU supports is *available*
///      ("scalar" always; "avx2" / "avx512" via cpuid on x86-64; "neon" on
///      aarch64);
///   2. if the environment variable `FDM_KERNEL` names an available target
///      ("scalar" | "avx2" | "avx512" | "neon"), that target is selected —
///      the testing/CI override that pins a build to one code path;
///   3. otherwise the best available target is selected (the last
///      non-scalar entry of `AvailableKernelTargets()`, falling back to
///      scalar).
/// An `FDM_KERNEL` value that names a *known* target this machine cannot
/// run (e.g. avx512 on a pre-Skylake CPU) prints one warning to stderr and
/// falls back to rule 3 — a pinned CI recipe degrades loudly instead of
/// crashing on older hardware. A value that is not a known target at all
/// is a configuration typo: the process prints the valid-target list to
/// stderr and exits with status 2 rather than silently benchmarking or
/// testing the wrong code path.
///
/// All targets are bit-identical by contract (see `kernel_types.h`), so
/// dispatch affects throughput only — every sink's `Solve()` output and
/// stored-element set is the same under any target.

/// The active function-pointer table (cheap: one relaxed atomic load after
/// first use). Hot paths call this once per scan, not per point.
const KernelOps& ActiveKernelOps();

/// Name of the active target ("scalar" | "avx2" | "avx512" | "neon") —
/// surfaced in serving stats and bench JSONs so recorded numbers are
/// self-describing.
std::string_view ActiveKernelName();

/// Targets compiled into this binary *and* runnable on this CPU, in
/// preference order (scalar first, best last). Tests sweep this list.
std::vector<std::string_view> AvailableKernelTargets();

namespace internal {

/// Test hook: forces the active table to `name` (must be available —
/// returns false and changes nothing otherwise). Passing "" restores the
/// process default (env override or best available). Not thread-safe
/// against concurrent scans; tests force targets only between scans.
bool ForceKernelTargetForTest(std::string_view name);

/// How the dispatcher classifies an `FDM_KERNEL` value on this machine.
/// Factored out of the resolution path so the policy is directly testable
/// (the exit-on-unknown behavior itself is covered by a death test).
enum class KernelEnvClass {
  kAvailable,         // selected
  kKnownUnavailable,  // real target, not runnable here: warn + fall back
  kUnknown,           // not a target name at all: fail loudly (exit 2)
};
KernelEnvClass ClassifyKernelEnv(std::string_view name);

}  // namespace internal

}  // namespace fdm::simd

#endif  // FDM_GEO_SIMD_KERNEL_DISPATCH_H_
