// The scalar reference target of the kernel dispatch table.
//
// This is the portable baseline every SIMD target is validated against:
// each lane of a block accumulates its point's raw distance over the
// dimensions in exactly the order of the scalar `Metric` kernels
// (`geo/metric.h`), and the block minimum is the exact minimum of the 8
// lane values. The dimension loop is outermost so the 8-lane rows are read
// contiguously — the compiler is free to autovectorize the independent
// per-lane accumulators (that cannot change results; lanes never mix), but
// no vector instruction set beyond the build baseline is assumed here.
//
// This translation unit is also the only kernel TU allowed to include
// shared inline headers (geo/metric.h): it is compiled at the baseline
// ISA, so the vague-linkage copies of those inline functions the linker
// may keep from here run everywhere. The ISA-extended TUs route their
// angular epilogue through `AngularBlockMinFromDots` below instead.

#include <cmath>
#include <cstdlib>
#include <limits>

#include "geo/metric.h"
#include "geo/simd/kernel_impl.h"
#include "geo/simd/kernel_targets.h"

namespace fdm::simd::internal {
namespace {

constexpr size_t kLanes = kPointBlockLanes;

struct ScalarTarget {
  static double EuclideanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    double acc[kLanes] = {};
    for (size_t d = 0; d < dim; ++d) {
      const double qd = q[d];
      const double* row = block + d * kLanes;
      for (size_t l = 0; l < kLanes; ++l) {
        const double diff = qd - row[l];
        acc[l] += diff * diff;
      }
    }
    double m = acc[0];
    for (size_t l = 1; l < kLanes; ++l) {
      if (acc[l] < m) m = acc[l];
    }
    return m;
  }

  static double ManhattanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    double acc[kLanes] = {};
    for (size_t d = 0; d < dim; ++d) {
      const double qd = q[d];
      const double* row = block + d * kLanes;
      for (size_t l = 0; l < kLanes; ++l) {
        acc[l] += std::fabs(qd - row[l]);
      }
    }
    double m = acc[0];
    for (size_t l = 1; l < kLanes; ++l) {
      if (acc[l] < m) m = acc[l];
    }
    return m;
  }

  static void AngularDotBlock(const double* block, size_t dim,
                              const double* q, double dots[kLanes]) {
    for (size_t l = 0; l < kLanes; ++l) dots[l] = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double qd = q[d];
      const double* row = block + d * kLanes;
      for (size_t l = 0; l < kLanes; ++l) {
        dots[l] += qd * row[l];
      }
    }
  }

  static void EuclideanBlockDists(const double* block, size_t dim,
                                  const double* q, double out[kLanes]) {
    double acc[kLanes] = {};
    for (size_t d = 0; d < dim; ++d) {
      const double qd = q[d];
      const double* row = block + d * kLanes;
      for (size_t l = 0; l < kLanes; ++l) {
        const double diff = qd - row[l];
        acc[l] += diff * diff;
      }
    }
    for (size_t l = 0; l < kLanes; ++l) out[l] = acc[l];
  }

  static void ManhattanBlockDists(const double* block, size_t dim,
                                  const double* q, double out[kLanes]) {
    double acc[kLanes] = {};
    for (size_t d = 0; d < dim; ++d) {
      const double qd = q[d];
      const double* row = block + d * kLanes;
      for (size_t l = 0; l < kLanes; ++l) {
        acc[l] += std::fabs(qd - row[l]);
      }
    }
    for (size_t l = 0; l < kLanes; ++l) out[l] = acc[l];
  }
};

/// The opt-in approximate-acos flag. Read once from FDM_APPROX_ACOS (any
/// non-empty value other than "0" enables), overridable by the test hook.
bool g_approx_acos = [] {
  const char* env = std::getenv("FDM_APPROX_ACOS");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}();

/// Hastings' 7-term arccos polynomial (Abramowitz & Stegun 4.4.46),
/// reflected onto [-1, 1]: |result − acos(x)| ≤ 2e-8 rad over the whole
/// domain. Used only when `ApproxAcosEnabled()` — it trades the libm acos
/// (the dominant cost of angular epilogues) for a sqrt plus 7 mul-adds.
double HastingsAcos(double x) {
  const bool negative = x < 0.0;
  const double t = negative ? -x : x;
  const double p =
      ((((((-0.0012624911 * t + 0.0066700901) * t - 0.0170881256) * t +
              0.0308918810) *
                 t -
             0.0501743046) *
                t +
            0.0889789874) *
               t -
           0.2145988016) *
          t +
      1.5707963050;
  const double r = p * std::sqrt(1.0 - t);
  return negative ? 3.14159265358979323846 - r : r;
}

/// One angular lane: `AngularFromDotAndNorms` with the acos swapped for
/// the polynomial when the opt-in flag is set. The zero-norm and clamping
/// guard rails are identical either way.
double AngularLane(double dot, double q_norm, double p_norm) {
  if (!g_approx_acos) {
    return fdm::internal::AngularFromDotAndNorms(dot, q_norm, p_norm);
  }
  if (q_norm == 0.0 || p_norm == 0.0) return HastingsAcos(0.0);
  double cosine = dot / (std::sqrt(q_norm) * std::sqrt(p_norm));
  if (cosine > 1.0) cosine = 1.0;
  if (cosine < -1.0) cosine = -1.0;
  return HastingsAcos(cosine);
}

}  // namespace

bool ApproxAcosEnabled() { return g_approx_acos; }

void SetApproxAcosForTest(bool enabled) { g_approx_acos = enabled; }

double AngularBlockMinFromDots(const double* dots, const double* norms8,
                               double q_norm) {
  // The epilogue (sqrt/acos) is scalar on every target — per lane it is
  // the shared `AngularFromDotAndNorms` (or its approximate-acos variant),
  // so cached-norm results match the scalar Metric bit for bit whenever
  // the approximation flag is off.
  double m = std::numeric_limits<double>::infinity();
  for (size_t l = 0; l < kLanes; ++l) {
    const double ang = AngularLane(dots[l], q_norm, norms8[l]);
    if (ang < m) m = ang;
  }
  return m;
}

void AngularBlockDistsFromDots(const double* dots, const double* norms8,
                               double q_norm, double* out8) {
  for (size_t l = 0; l < kLanes; ++l) {
    out8[l] = AngularLane(dots[l], q_norm, norms8[l]);
  }
}

const KernelOps& ScalarKernelOps() {
  static const KernelOps ops = KernelEntryPoints<ScalarTarget>::Ops("scalar");
  return ops;
}

}  // namespace fdm::simd::internal
