// The scalar reference target of the kernel dispatch table.
//
// This is the portable baseline every SIMD target is validated against:
// each lane of a block accumulates its point's raw distance over the
// dimensions in exactly the order of the scalar `Metric` kernels
// (`geo/metric.h`), and the block minimum is the exact minimum of the 8
// lane values. The dimension loop is outermost so the 8-lane rows are read
// contiguously — the compiler is free to autovectorize the independent
// per-lane accumulators (that cannot change results; lanes never mix), but
// no vector instruction set beyond the build baseline is assumed here.
//
// This translation unit is also the only kernel TU allowed to include
// shared inline headers (geo/metric.h): it is compiled at the baseline
// ISA, so the vague-linkage copies of those inline functions the linker
// may keep from here run everywhere. The ISA-extended TUs route their
// angular epilogue through `AngularBlockMinFromDots` below instead.

#include <cmath>
#include <limits>

#include "geo/metric.h"
#include "geo/simd/kernel_impl.h"
#include "geo/simd/kernel_targets.h"

namespace fdm::simd::internal {
namespace {

constexpr size_t kLanes = kPointBlockLanes;

struct ScalarTarget {
  static double EuclideanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    double acc[kLanes] = {};
    for (size_t d = 0; d < dim; ++d) {
      const double qd = q[d];
      const double* row = block + d * kLanes;
      for (size_t l = 0; l < kLanes; ++l) {
        const double diff = qd - row[l];
        acc[l] += diff * diff;
      }
    }
    double m = acc[0];
    for (size_t l = 1; l < kLanes; ++l) {
      if (acc[l] < m) m = acc[l];
    }
    return m;
  }

  static double ManhattanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    double acc[kLanes] = {};
    for (size_t d = 0; d < dim; ++d) {
      const double qd = q[d];
      const double* row = block + d * kLanes;
      for (size_t l = 0; l < kLanes; ++l) {
        acc[l] += std::fabs(qd - row[l]);
      }
    }
    double m = acc[0];
    for (size_t l = 1; l < kLanes; ++l) {
      if (acc[l] < m) m = acc[l];
    }
    return m;
  }

  static void AngularDotBlock(const double* block, size_t dim,
                              const double* q, double dots[kLanes]) {
    for (size_t l = 0; l < kLanes; ++l) dots[l] = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double qd = q[d];
      const double* row = block + d * kLanes;
      for (size_t l = 0; l < kLanes; ++l) {
        dots[l] += qd * row[l];
      }
    }
  }
};

}  // namespace

double AngularBlockMinFromDots(const double* dots, const double* norms8,
                               double q_norm) {
  // The epilogue (sqrt/acos) is scalar on every target — per lane it is
  // the shared `AngularFromDotAndNorms`, so cached-norm results match the
  // scalar Metric bit for bit.
  double m = std::numeric_limits<double>::infinity();
  for (size_t l = 0; l < kLanes; ++l) {
    const double ang =
        fdm::internal::AngularFromDotAndNorms(dots[l], q_norm, norms8[l]);
    if (ang < m) m = ang;
  }
  return m;
}

const KernelOps& ScalarKernelOps() {
  static const KernelOps ops = KernelEntryPoints<ScalarTarget>::Ops("scalar");
  return ops;
}

}  // namespace fdm::simd::internal
