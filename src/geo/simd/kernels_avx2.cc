// AVX2 dispatch target: the 8 lanes of a point block are two 256-bit
// double vectors, loaded with *aligned* loads (the block rows are 64-byte
// aligned by `PointBuffer`'s storage contract and padded, so there is no
// tail handling anywhere in this file).
//
// Bit-exactness: every lane accumulates its point's distance over the
// dimensions with separate vmulpd/vaddpd (this translation unit is
// compiled with `-mavx2` only — never `-mfma` — and the intrinsics are
// explicit, so no FMA contraction can occur), which is exactly the scalar
// `Metric` accumulation order. The lane→block-min reduction is a min tree;
// min is order-invariant for the non-NaN raw distances the metrics
// produce, so the block minimum equals the scalar target's bit for bit.
// The scan skeletons and entry-point glue in kernel_impl.h are shared, so
// early-exit behavior is structurally identical too.
//
// This TU deliberately includes no shared inline headers beyond the
// kernel subsystem's own (notably not geo/metric.h): everything here is
// AVX-encoded, and a vague-linkage copy of a shared inline function
// emitted from this TU could be the one the linker keeps for the whole
// program — crashing scalar code paths on CPUs without AVX. The angular
// epilogue is reached through the baseline-compiled
// `AngularBlockMinFromDots` instead, and the entry-point template is
// instantiated with an internal-linkage target so its code stays private
// to this TU.

#include "geo/simd/kernel_targets.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "geo/simd/kernel_impl.h"

namespace fdm::simd::internal {
namespace {

constexpr size_t kLanes = kPointBlockLanes;

/// Exact minimum of the 8 doubles held in two 256-bit accumulators.
inline double HorizontalMin(__m256d a, __m256d b) {
  const __m256d m4 = _mm256_min_pd(a, b);
  const __m128d lo = _mm256_castpd256_pd128(m4);
  const __m128d hi = _mm256_extractf128_pd(m4, 1);
  const __m128d m2 = _mm_min_pd(lo, hi);
  const __m128d m1 = _mm_min_sd(m2, _mm_unpackhi_pd(m2, m2));
  return _mm_cvtsd_f64(m1);
}

struct Avx2Target {
  static double EuclideanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(q[d]);
      const double* row = block + d * kLanes;
      const __m256d diff0 = _mm256_sub_pd(qd, _mm256_load_pd(row));
      const __m256d diff1 = _mm256_sub_pd(qd, _mm256_load_pd(row + 4));
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(diff0, diff0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(diff1, diff1));
    }
    return HorizontalMin(acc0, acc1);
  }

  static double ManhattanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    // fabs = clear the sign bit — exact, identical to std::fabs.
    const __m256d abs_mask = _mm256_set1_pd(-0.0);
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(q[d]);
      const double* row = block + d * kLanes;
      const __m256d diff0 = _mm256_sub_pd(qd, _mm256_load_pd(row));
      const __m256d diff1 = _mm256_sub_pd(qd, _mm256_load_pd(row + 4));
      acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(abs_mask, diff0));
      acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(abs_mask, diff1));
    }
    return HorizontalMin(acc0, acc1);
  }

  static void AngularDotBlock(const double* block, size_t dim,
                              const double* q, double dots[kLanes]) {
    __m256d dot0 = _mm256_setzero_pd();
    __m256d dot1 = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(q[d]);
      const double* row = block + d * kLanes;
      dot0 = _mm256_add_pd(dot0, _mm256_mul_pd(qd, _mm256_load_pd(row)));
      dot1 = _mm256_add_pd(dot1, _mm256_mul_pd(qd, _mm256_load_pd(row + 4)));
    }
    _mm256_store_pd(dots, dot0);
    _mm256_store_pd(dots + 4, dot1);
  }

  static void EuclideanBlockDists(const double* block, size_t dim,
                                  const double* q, double out[kLanes]) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(q[d]);
      const double* row = block + d * kLanes;
      const __m256d diff0 = _mm256_sub_pd(qd, _mm256_load_pd(row));
      const __m256d diff1 = _mm256_sub_pd(qd, _mm256_load_pd(row + 4));
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(diff0, diff0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(diff1, diff1));
    }
    // Unaligned stores: the offline callers' output rows are plain vectors.
    _mm256_storeu_pd(out, acc0);
    _mm256_storeu_pd(out + 4, acc1);
  }

  static void ManhattanBlockDists(const double* block, size_t dim,
                                  const double* q, double out[kLanes]) {
    const __m256d abs_mask = _mm256_set1_pd(-0.0);
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m256d qd = _mm256_set1_pd(q[d]);
      const double* row = block + d * kLanes;
      const __m256d diff0 = _mm256_sub_pd(qd, _mm256_load_pd(row));
      const __m256d diff1 = _mm256_sub_pd(qd, _mm256_load_pd(row + 4));
      acc0 = _mm256_add_pd(acc0, _mm256_andnot_pd(abs_mask, diff0));
      acc1 = _mm256_add_pd(acc1, _mm256_andnot_pd(abs_mask, diff1));
    }
    _mm256_storeu_pd(out, acc0);
    _mm256_storeu_pd(out + 4, acc1);
  }
};

}  // namespace

const KernelOps* Avx2KernelOpsOrNull() {
  static const KernelOps ops = KernelEntryPoints<Avx2Target>::Ops("avx2");
  return &ops;
}

}  // namespace fdm::simd::internal

#else  // not x86-64

namespace fdm::simd::internal {
const KernelOps* Avx2KernelOpsOrNull() { return nullptr; }
}  // namespace fdm::simd::internal

#endif
