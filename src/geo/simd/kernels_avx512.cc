// AVX-512F dispatch target: the 8 lanes of a point block are exactly one
// 512-bit double vector, so every dimension row is a single *aligned* load
// (the block rows are 64-byte aligned by `PointBuffer`'s storage contract
// and padded — no tail handling anywhere in this file).
//
// Bit-exactness: every lane accumulates its point's distance over the
// dimensions with separate vmulpd/vaddpd (this translation unit is
// compiled with `-mavx512f` only — never `-mfma`, and the intrinsics are
// explicit, so no FMA contraction can occur), which is exactly the scalar
// `Metric` accumulation order. The lane→block-min reduction uses
// `_mm512_reduce_min_pd` — a min tree, order-invariant for the non-NaN
// raw distances the metrics produce — so the block minimum equals the
// scalar target's bit for bit. The scan skeletons and entry-point glue in
// kernel_impl.h are shared, so early-exit behavior is structurally
// identical too.
//
// fabs is implemented as an integer-domain andnot
// (`_mm512_andnot_epi64`): clearing the sign bit is exact and identical
// to std::fabs, and the float-domain `_mm512_andnot_pd` would require
// AVX-512DQ — this TU assumes only the F foundation subset, which is what
// the cpuid gate in kernel_dispatch.cc checks.
//
// Like the AVX2 TU, this file includes no shared inline headers beyond the
// kernel subsystem's own (notably not geo/metric.h): everything here is
// EVEX-encoded, and a vague-linkage copy of a shared inline function
// emitted from this TU could be the one the linker keeps for the whole
// program — crashing scalar code paths on CPUs without AVX-512. The
// angular epilogue is reached through the baseline-compiled
// `AngularBlockMinFromDots` / `AngularBlockDistsFromDots`, and the
// entry-point template is instantiated with an internal-linkage target so
// its code stays private to this TU.

#include "geo/simd/kernel_targets.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "geo/simd/kernel_impl.h"

namespace fdm::simd::internal {
namespace {

constexpr size_t kLanes = kPointBlockLanes;

/// fabs for one 8-lane vector: clear the sign bits in the integer domain
/// (AVX-512F; the float-domain andnot needs the DQ subset).
inline __m512d Abs512(__m512d x) {
  const __m512i sign = _mm512_set1_epi64(0x8000000000000000LL);
  return _mm512_castsi512_pd(
      _mm512_andnot_si512(sign, _mm512_castpd_si512(x)));
}

struct Avx512Target {
  static double EuclideanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(q[d]);
      const __m512d diff =
          _mm512_sub_pd(qd, _mm512_load_pd(block + d * kLanes));
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    return _mm512_reduce_min_pd(acc);
  }

  static double ManhattanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(q[d]);
      const __m512d diff =
          _mm512_sub_pd(qd, _mm512_load_pd(block + d * kLanes));
      acc = _mm512_add_pd(acc, Abs512(diff));
    }
    return _mm512_reduce_min_pd(acc);
  }

  static void AngularDotBlock(const double* block, size_t dim,
                              const double* q, double dots[kLanes]) {
    __m512d dot = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(q[d]);
      dot = _mm512_add_pd(dot,
                          _mm512_mul_pd(qd, _mm512_load_pd(block + d * kLanes)));
    }
    _mm512_store_pd(dots, dot);
  }

  static void EuclideanBlockDists(const double* block, size_t dim,
                                  const double* q, double out[kLanes]) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(q[d]);
      const __m512d diff =
          _mm512_sub_pd(qd, _mm512_load_pd(block + d * kLanes));
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    // Unaligned store: the offline callers' output rows are plain vectors.
    _mm512_storeu_pd(out, acc);
  }

  static void ManhattanBlockDists(const double* block, size_t dim,
                                  const double* q, double out[kLanes]) {
    __m512d acc = _mm512_setzero_pd();
    for (size_t d = 0; d < dim; ++d) {
      const __m512d qd = _mm512_set1_pd(q[d]);
      const __m512d diff =
          _mm512_sub_pd(qd, _mm512_load_pd(block + d * kLanes));
      acc = _mm512_add_pd(acc, Abs512(diff));
    }
    _mm512_storeu_pd(out, acc);
  }
};

}  // namespace

const KernelOps* Avx512KernelOpsOrNull() {
  static const KernelOps ops = KernelEntryPoints<Avx512Target>::Ops("avx512");
  return &ops;
}

}  // namespace fdm::simd::internal

#else  // not x86-64

namespace fdm::simd::internal {
const KernelOps* Avx512KernelOpsOrNull() { return nullptr; }
}  // namespace fdm::simd::internal

#endif
