#ifndef FDM_GEO_SIMD_KERNEL_TARGETS_H_
#define FDM_GEO_SIMD_KERNEL_TARGETS_H_

#include "geo/simd/kernel_types.h"

namespace fdm::simd::internal {

/// The per-target op tables, linked unconditionally; a target that is not
/// compiled for this architecture returns `nullptr` (its translation unit
/// shrinks to a stub), so the dispatcher never needs `#ifdef`s. Whether
/// the *CPU* can run a compiled-in target is a separate runtime question
/// answered in `kernel_dispatch.cc`.
const KernelOps& ScalarKernelOps();
const KernelOps* Avx2KernelOpsOrNull();    // x86-64 builds only
const KernelOps* Avx512KernelOpsOrNull();  // x86-64 builds only
const KernelOps* NeonKernelOpsOrNull();    // aarch64 builds only

/// The angular epilogue shared by every target: maps a block's 8 dot
/// products to angles through `fdm::internal::AngularFromDotAndNorms` and
/// returns their minimum in lane order. Defined once in kernels_scalar.cc
/// — compiled at the *baseline* ISA — and deliberately out-of-line: the
/// SIMD translation units must not include shared inline headers like
/// geo/metric.h, or the linker could keep their ISA-extended copies of
/// vague-linkage symbols for the whole program and crash scalar paths on
/// CPUs without the extension.
double AngularBlockMinFromDots(const double* dots, const double* norms8,
                               double q_norm);

/// Per-point variant of the angular epilogue for the offline `*_dists`
/// kernels: writes all 8 lane angles to `out8` instead of reducing to the
/// minimum. Same baseline-ISA placement rules as above.
void AngularBlockDistsFromDots(const double* dots, const double* norms8,
                               double q_norm, double* out8);

/// Opt-in approximate-acos epilogue for the angular kernels (default off).
///
/// When enabled — `FDM_APPROX_ACOS=1` at process start, or the test hook
/// below — both angular epilogues replace `std::acos` with the 7-term
/// Hastings polynomial (Abramowitz & Stegun 4.4.46 reflected onto [-1, 1]).
/// Error policy: |acos_poly(x) − acos(x)| ≤ 2e-8 rad, i.e. up to ~1e8 ULP
/// of a double near π — far below the inter-point angle gaps diversity
/// maximization discriminates, but NOT bit-exact, which is why it is off by
/// default. Because the epilogue is shared baseline code, results remain
/// bit-identical *across dispatch targets* even when the flag is on; they
/// differ from the scalar `Metric` reference. The flag is read once.
bool ApproxAcosEnabled();

/// Test hook: overrides the approximate-acos flag (not thread-safe; tests
/// toggle it only between scans).
void SetApproxAcosForTest(bool enabled);

}  // namespace fdm::simd::internal

#endif  // FDM_GEO_SIMD_KERNEL_TARGETS_H_
