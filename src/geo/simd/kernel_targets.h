#ifndef FDM_GEO_SIMD_KERNEL_TARGETS_H_
#define FDM_GEO_SIMD_KERNEL_TARGETS_H_

#include "geo/simd/kernel_types.h"

namespace fdm::simd::internal {

/// The per-target op tables, linked unconditionally; a target that is not
/// compiled for this architecture returns `nullptr` (its translation unit
/// shrinks to a stub), so the dispatcher never needs `#ifdef`s. Whether
/// the *CPU* can run a compiled-in target is a separate runtime question
/// answered in `kernel_dispatch.cc`.
const KernelOps& ScalarKernelOps();
const KernelOps* Avx2KernelOpsOrNull();  // x86-64 builds only
const KernelOps* NeonKernelOpsOrNull();  // aarch64 builds only

/// The angular epilogue shared by every target: maps a block's 8 dot
/// products to angles through `fdm::internal::AngularFromDotAndNorms` and
/// returns their minimum in lane order. Defined once in kernels_scalar.cc
/// — compiled at the *baseline* ISA — and deliberately out-of-line: the
/// SIMD translation units must not include shared inline headers like
/// geo/metric.h, or the linker could keep their ISA-extended copies of
/// vague-linkage symbols for the whole program and crash scalar paths on
/// CPUs without the extension.
double AngularBlockMinFromDots(const double* dots, const double* norms8,
                               double q_norm);

}  // namespace fdm::simd::internal

#endif  // FDM_GEO_SIMD_KERNEL_TARGETS_H_
