// NEON (aarch64 Advanced SIMD) dispatch target: the 8 lanes of a point
// block are four 128-bit double vectors. NEON double-precision SIMD is
// architecturally mandatory on aarch64, so this target is always available
// on aarch64 builds and never compiled elsewhere.
//
// Bit-exactness follows the same argument as the AVX2 target: per-lane
// scalar-order accumulation with explicit separate vmul/vadd intrinsics
// (no vfma — the repo builds with `-ffp-contract=off`, and intrinsics are
// not contracted anyway), an order-invariant min reduction, and the shared
// scan skeletons and entry-point glue of kernel_impl.h. Like the AVX2 TU,
// the angular epilogue goes through the baseline `AngularBlockMinFromDots`
// and the entry points are instantiated with an internal-linkage target
// (NEON is baseline on aarch64 so the hazard is theoretical here, but the
// TUs stay structurally identical).

#include "geo/simd/kernel_targets.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "geo/simd/kernel_impl.h"

namespace fdm::simd::internal {
namespace {

constexpr size_t kLanes = kPointBlockLanes;

/// Exact minimum of the 8 doubles held in four 2-lane accumulators.
inline double HorizontalMin(float64x2_t a, float64x2_t b, float64x2_t c,
                            float64x2_t d) {
  const float64x2_t m = vminq_f64(vminq_f64(a, b), vminq_f64(c, d));
  return vminvq_f64(m);
}

struct NeonTarget {
  static double EuclideanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    float64x2_t acc2 = vdupq_n_f64(0.0);
    float64x2_t acc3 = vdupq_n_f64(0.0);
    for (size_t d = 0; d < dim; ++d) {
      const float64x2_t qd = vdupq_n_f64(q[d]);
      const double* row = block + d * kLanes;
      const float64x2_t d0 = vsubq_f64(qd, vld1q_f64(row));
      const float64x2_t d1 = vsubq_f64(qd, vld1q_f64(row + 2));
      const float64x2_t d2 = vsubq_f64(qd, vld1q_f64(row + 4));
      const float64x2_t d3 = vsubq_f64(qd, vld1q_f64(row + 6));
      acc0 = vaddq_f64(acc0, vmulq_f64(d0, d0));
      acc1 = vaddq_f64(acc1, vmulq_f64(d1, d1));
      acc2 = vaddq_f64(acc2, vmulq_f64(d2, d2));
      acc3 = vaddq_f64(acc3, vmulq_f64(d3, d3));
    }
    return HorizontalMin(acc0, acc1, acc2, acc3);
  }

  static double ManhattanBlockMin(const double* block, size_t dim,
                                  const double* q) {
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    float64x2_t acc2 = vdupq_n_f64(0.0);
    float64x2_t acc3 = vdupq_n_f64(0.0);
    for (size_t d = 0; d < dim; ++d) {
      const float64x2_t qd = vdupq_n_f64(q[d]);
      const double* row = block + d * kLanes;
      acc0 = vaddq_f64(acc0, vabsq_f64(vsubq_f64(qd, vld1q_f64(row))));
      acc1 = vaddq_f64(acc1, vabsq_f64(vsubq_f64(qd, vld1q_f64(row + 2))));
      acc2 = vaddq_f64(acc2, vabsq_f64(vsubq_f64(qd, vld1q_f64(row + 4))));
      acc3 = vaddq_f64(acc3, vabsq_f64(vsubq_f64(qd, vld1q_f64(row + 6))));
    }
    return HorizontalMin(acc0, acc1, acc2, acc3);
  }

  static void AngularDotBlock(const double* block, size_t dim,
                              const double* q, double dots[kLanes]) {
    float64x2_t dot0 = vdupq_n_f64(0.0);
    float64x2_t dot1 = vdupq_n_f64(0.0);
    float64x2_t dot2 = vdupq_n_f64(0.0);
    float64x2_t dot3 = vdupq_n_f64(0.0);
    for (size_t d = 0; d < dim; ++d) {
      const float64x2_t qd = vdupq_n_f64(q[d]);
      const double* row = block + d * kLanes;
      dot0 = vaddq_f64(dot0, vmulq_f64(qd, vld1q_f64(row)));
      dot1 = vaddq_f64(dot1, vmulq_f64(qd, vld1q_f64(row + 2)));
      dot2 = vaddq_f64(dot2, vmulq_f64(qd, vld1q_f64(row + 4)));
      dot3 = vaddq_f64(dot3, vmulq_f64(qd, vld1q_f64(row + 6)));
    }
    vst1q_f64(dots, dot0);
    vst1q_f64(dots + 2, dot1);
    vst1q_f64(dots + 4, dot2);
    vst1q_f64(dots + 6, dot3);
  }

  static void EuclideanBlockDists(const double* block, size_t dim,
                                  const double* q, double out[kLanes]) {
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    float64x2_t acc2 = vdupq_n_f64(0.0);
    float64x2_t acc3 = vdupq_n_f64(0.0);
    for (size_t d = 0; d < dim; ++d) {
      const float64x2_t qd = vdupq_n_f64(q[d]);
      const double* row = block + d * kLanes;
      const float64x2_t d0 = vsubq_f64(qd, vld1q_f64(row));
      const float64x2_t d1 = vsubq_f64(qd, vld1q_f64(row + 2));
      const float64x2_t d2 = vsubq_f64(qd, vld1q_f64(row + 4));
      const float64x2_t d3 = vsubq_f64(qd, vld1q_f64(row + 6));
      acc0 = vaddq_f64(acc0, vmulq_f64(d0, d0));
      acc1 = vaddq_f64(acc1, vmulq_f64(d1, d1));
      acc2 = vaddq_f64(acc2, vmulq_f64(d2, d2));
      acc3 = vaddq_f64(acc3, vmulq_f64(d3, d3));
    }
    vst1q_f64(out, acc0);
    vst1q_f64(out + 2, acc1);
    vst1q_f64(out + 4, acc2);
    vst1q_f64(out + 6, acc3);
  }

  static void ManhattanBlockDists(const double* block, size_t dim,
                                  const double* q, double out[kLanes]) {
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    float64x2_t acc2 = vdupq_n_f64(0.0);
    float64x2_t acc3 = vdupq_n_f64(0.0);
    for (size_t d = 0; d < dim; ++d) {
      const float64x2_t qd = vdupq_n_f64(q[d]);
      const double* row = block + d * kLanes;
      acc0 = vaddq_f64(acc0, vabsq_f64(vsubq_f64(qd, vld1q_f64(row))));
      acc1 = vaddq_f64(acc1, vabsq_f64(vsubq_f64(qd, vld1q_f64(row + 2))));
      acc2 = vaddq_f64(acc2, vabsq_f64(vsubq_f64(qd, vld1q_f64(row + 4))));
      acc3 = vaddq_f64(acc3, vabsq_f64(vsubq_f64(qd, vld1q_f64(row + 6))));
    }
    vst1q_f64(out, acc0);
    vst1q_f64(out + 2, acc1);
    vst1q_f64(out + 4, acc2);
    vst1q_f64(out + 6, acc3);
  }
};

}  // namespace

const KernelOps* NeonKernelOpsOrNull() {
  static const KernelOps ops = KernelEntryPoints<NeonTarget>::Ops("neon");
  return &ops;
}

}  // namespace fdm::simd::internal

#else  // not aarch64

namespace fdm::simd::internal {
const KernelOps* NeonKernelOpsOrNull() { return nullptr; }
}  // namespace fdm::simd::internal

#endif
