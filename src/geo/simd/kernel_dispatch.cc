#include "geo/simd/kernel_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "geo/simd/kernel_targets.h"
#include "obs/metrics.h"

namespace fdm::simd {
namespace {

/// Publishes the live dispatch target as an info-style metric so every
/// METRICS scrape is self-describing about which kernel produced the
/// latency it reports.
void PublishKernelTargetInfo(const KernelOps* ops) {
  obs::MetricsRegistry::Global().SetInfo("fdm_kernel_target",
                                         std::string(ops->name));
}

/// True iff the running CPU can execute the AVX2 target. Compiled-in and
/// runnable are separate questions: a generic x86-64 build still carries
/// the `-mavx2` translation unit, and this check keeps it unreached on
/// pre-Haswell hardware.
bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
#else
  return false;
#endif
}

/// True iff the running CPU can execute the AVX-512 target. The target
/// uses only the F (foundation) subset, so that is the only cpuid bit
/// checked.
bool CpuSupportsAvx512F() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Every target name any build of this binary could know, across
/// architectures — the vocabulary `FDM_KERNEL` is validated against.
/// A name outside this list is a typo and fails loudly; a name inside it
/// that is not *available* here merely warns and falls back.
constexpr std::string_view kKnownTargets[] = {"scalar", "avx2", "avx512",
                                              "neon"};

bool IsKnownTargetName(std::string_view name) {
  for (const std::string_view known : kKnownTargets) {
    if (known == name) return true;
  }
  return false;
}

const KernelOps* FindByName(const std::vector<const KernelOps*>& targets,
                            std::string_view name) {
  for (const KernelOps* ops : targets) {
    if (ops->name == name) return ops;
  }
  return nullptr;
}

struct Dispatch {
  /// Available targets in preference order: scalar first, best last.
  std::vector<const KernelOps*> available;
  /// The process default after applying the FDM_KERNEL override.
  const KernelOps* standard = nullptr;
  /// The live table; only `ForceKernelTargetForTest` moves it afterwards.
  std::atomic<const KernelOps*> active{nullptr};

  Dispatch() {
    available.push_back(&internal::ScalarKernelOps());
    if (const KernelOps* avx2 = internal::Avx2KernelOpsOrNull();
        avx2 != nullptr && CpuSupportsAvx2()) {
      available.push_back(avx2);
    }
    if (const KernelOps* avx512 = internal::Avx512KernelOpsOrNull();
        avx512 != nullptr && CpuSupportsAvx512F()) {
      available.push_back(avx512);
    }
    if (const KernelOps* neon = internal::NeonKernelOpsOrNull();
        neon != nullptr) {
      // NEON double-precision SIMD is mandatory on aarch64 — compiled-in
      // implies runnable.
      available.push_back(neon);
    }
    standard = available.back();
    if (const char* env = std::getenv("FDM_KERNEL");
        env != nullptr && env[0] != '\0') {
      if (const KernelOps* forced = FindByName(available, env)) {
        standard = forced;
      } else if (IsKnownTargetName(env)) {
        // A real target this machine can't run (wrong arch or missing
        // cpuid feature): a pinned CI recipe degrades loudly, once.
        std::fprintf(stderr,
                     "fdm: FDM_KERNEL=%s is not supported by this "
                     "machine/build; using '%s'\n",
                     env, std::string(standard->name).c_str());
      } else {
        // Not a target name at all — a typo would otherwise silently
        // benchmark or test the wrong code path. Fail loudly instead.
        std::string valid;
        for (const std::string_view known : kKnownTargets) {
          if (!valid.empty()) valid += ", ";
          valid += known;
        }
        std::fprintf(stderr,
                     "fdm: FDM_KERNEL=%s is not a valid kernel target; "
                     "valid targets: %s\n",
                     env, valid.c_str());
        std::exit(2);
      }
    }
    active.store(standard, std::memory_order_relaxed);
    PublishKernelTargetInfo(standard);
  }
};

Dispatch& GetDispatch() {
  static Dispatch dispatch;
  return dispatch;
}

}  // namespace

const KernelOps& ActiveKernelOps() {
  return *GetDispatch().active.load(std::memory_order_relaxed);
}

std::string_view ActiveKernelName() { return ActiveKernelOps().name; }

std::vector<std::string_view> AvailableKernelTargets() {
  std::vector<std::string_view> names;
  for (const KernelOps* ops : GetDispatch().available) {
    names.push_back(ops->name);
  }
  return names;
}

namespace internal {

bool ForceKernelTargetForTest(std::string_view name) {
  Dispatch& d = GetDispatch();
  if (name.empty()) {
    d.active.store(d.standard, std::memory_order_relaxed);
    PublishKernelTargetInfo(d.standard);
    return true;
  }
  const KernelOps* target = FindByName(d.available, name);
  if (target == nullptr) return false;
  d.active.store(target, std::memory_order_relaxed);
  PublishKernelTargetInfo(target);
  return true;
}

KernelEnvClass ClassifyKernelEnv(std::string_view name) {
  if (FindByName(GetDispatch().available, name) != nullptr) {
    return KernelEnvClass::kAvailable;
  }
  return IsKnownTargetName(name) ? KernelEnvClass::kKnownUnavailable
                                 : KernelEnvClass::kUnknown;
}

}  // namespace internal

}  // namespace fdm::simd
