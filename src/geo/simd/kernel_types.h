#ifndef FDM_GEO_SIMD_KERNEL_TYPES_H_
#define FDM_GEO_SIMD_KERNEL_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fdm::simd {

/// Lane width of the point-block (AoSoA) coordinate layout: points are
/// stored in blocks of 8, and within a block dimension-major — the 8
/// doubles of one dimension row are contiguous and 64-byte aligned (one
/// cache line, one AVX-512 register, two AVX2 registers, four NEON
/// registers). The one-to-many kernels vectorize *across the 8 points of a
/// block*, so each lane accumulates its point's distance over the
/// dimensions in exactly the scalar `Metric` order — which is what makes
/// every target bit-identical to the scalar reference without constraining
/// how a target reduces lanes to the block minimum (min is order-invariant
/// for the non-NaN, non-negative raw distances the metrics produce).
inline constexpr size_t kPointBlockLanes = 8;

/// Blocks needed to hold `n` points.
inline constexpr size_t PointBlockCount(size_t n) {
  return (n + kPointBlockLanes - 1) / kPointBlockLanes;
}

/// Doubles per block for points of dimension `dim` (the block stride).
inline constexpr size_t PointBlockStride(size_t dim) {
  return dim * kPointBlockLanes;
}

/// A borrowed view of a `PointBuffer`'s kernel-facing storage.
///
/// `blocks` is the padded AoSoA coordinate array: coordinate `d` of point
/// `i` lives at `blocks[(i / 8) * dim * 8 + d * 8 + i % 8]`. Padding lanes
/// of the final block *replicate the last real point* (coordinates and
/// norm), so a kernel scans every block as a full block — no tail masking,
/// no out-of-bounds loads, and the padding lanes can never win a min
/// reduction on their own (they tie with a real lane bit-for-bit).
///
/// `norms` holds one cached squared L2 norm per point (linear index,
/// padding replicated like the coordinates); only the angular kernels read
/// it. `n >= 1` is a precondition of every kernel call — the empty-buffer
/// +infinity case is handled by the caller.
struct PointBlockView {
  const double* blocks = nullptr;
  const double* norms = nullptr;
  size_t n = 0;
  size_t dim = 0;
};

/// Arguments of the one-to-many *batch* kernels (`Q` query points against
/// one stored block view, with per-query early-exit thresholds).
///
/// Contract: `out_min_raw[q]` receives the exact minimum raw distance from
/// query `q` to the `n` stored points, unless the per-query running
/// minimum drops below `stop_below[q]` mid-scan — then the query stops
/// participating and keeps its current value (which is `< stop_below[q]`,
/// so threshold decisions are exact either way; pass `-inf` thresholds for
/// exact minima). All targets process blocks in the same order with the
/// same per-block exit bookkeeping, so outputs are bit-identical across
/// targets. `scratch` must hold `nq` entries (the active-query worklist).
struct ManyQueryArgs {
  const double* const* queries = nullptr;  // nq pointers, dim doubles each
  const double* query_norms = nullptr;     // nq norms (angular only)
  size_t nq = 0;
  const double* stop_below = nullptr;  // nq prepared raw-space thresholds
  double* out_min_raw = nullptr;       // nq results
  uint32_t* scratch = nullptr;         // nq entries of worklist scratch
};

/// One dispatch target: the function-pointer table the runtime dispatcher
/// resolves once per process (see `kernel_dispatch.h`). `stop_below` is a
/// raw-space threshold (`Metric::PrepareThreshold`); the scan may return
/// early with any value `< stop_below` once the running minimum crosses
/// it, and returns the exact minimum otherwise. Angular kernels take the
/// query's squared norm so it is computed once per scan.
struct KernelOps {
  std::string_view name;

  double (*euclidean_min)(const PointBlockView& pts, const double* q,
                          double stop_below) = nullptr;
  double (*manhattan_min)(const PointBlockView& pts, const double* q,
                          double stop_below) = nullptr;
  double (*angular_min)(const PointBlockView& pts, const double* q,
                        double q_norm, double stop_below) = nullptr;

  void (*euclidean_min_many)(const PointBlockView& pts,
                             const ManyQueryArgs& args) = nullptr;
  void (*manhattan_min_many)(const PointBlockView& pts,
                             const ManyQueryArgs& args) = nullptr;
  void (*angular_min_many)(const PointBlockView& pts,
                           const ManyQueryArgs& args) = nullptr;

  // Offline per-point kernels: the raw distance from one query to *every*
  // stored point, in lane order — the primitive behind the offline Solve
  // paths (GMM relax scans, clustering rows, max-sum accumulation), which
  // need every distance rather than the minimum. `out_raw` must hold
  // `PointBlockCount(pts.n) * kPointBlockLanes` doubles; every block is
  // written in full (padding lanes receive the replicated-last-point
  // distance) and callers read the first `pts.n` entries. No early exit,
  // no alignment requirement on `out_raw` (targets use unaligned stores).
  // Per-lane arithmetic is the scalar `Metric` order, so entry `i` is
  // bit-identical to `metric.RawDistance(q, point_i)` on every target.
  void (*euclidean_dists)(const PointBlockView& pts, const double* q,
                          double* out_raw) = nullptr;
  void (*manhattan_dists)(const PointBlockView& pts, const double* q,
                          double* out_raw) = nullptr;
  void (*angular_dists)(const PointBlockView& pts, const double* q,
                        double q_norm, double* out_raw) = nullptr;
};

}  // namespace fdm::simd

#endif  // FDM_GEO_SIMD_KERNEL_TYPES_H_
