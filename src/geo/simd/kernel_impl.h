#ifndef FDM_GEO_SIMD_KERNEL_IMPL_H_
#define FDM_GEO_SIMD_KERNEL_IMPL_H_

#include <cstddef>
#include <cstdint>
#include <limits>

#include "geo/simd/kernel_targets.h"
#include "geo/simd/kernel_types.h"

namespace fdm::simd::internal {

/// Compile-time +infinity. The skeletons deliberately use this constant
/// instead of calling `std::numeric_limits<double>::infinity()` at
/// runtime: that call is an inline *function* touching floating point, and
/// a vague-linkage copy emitted from an ISA-extended TU (VEX-encoded under
/// -mavx2 at -O0) could be the one the linker keeps program-wide. A
/// constexpr variable is data, not code — nothing to mis-encode.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// The target-independent scan skeletons. Every dispatch target routes its
/// per-block distance primitive through these two templates, so the block
/// order, the early-exit bookkeeping, and the returned values are
/// *structurally* identical across targets — the only per-target code is
/// "8 lane distances and their minimum for block `b`", whose value is
/// exact-min-of-8 on every target. That is the whole bit-exactness
/// argument: identical per-lane arithmetic (scalar accumulation order per
/// lane, no FMA contraction) plus an order-invariant min reduction plus an
/// identical scan structure.

/// One-to-many scan: `block_min(b)` returns the minimum raw distance from
/// the query to the 8 lanes of block `b`. Gives up as soon as the running
/// minimum drops below `stop_below` (pass -inf for an exact full scan,
/// mirroring the pre-SIMD blocked scalar kernel's contract).
template <typename BlockMinFn>
inline double MinRawBlocked(size_t n_blocks, double stop_below,
                            BlockMinFn&& block_min) {
  double best = kInfinity;
  for (size_t b = 0; b < n_blocks; ++b) {
    const double bm = block_min(b);
    if (bm < best) best = bm;
    if (best < stop_below) return best;
  }
  return best;
}

/// Q-query × N-block scan: the stored blocks are walked *once* in the
/// outer loop and each block is applied to every still-active query, so a
/// batch amortizes the block loads (they stay hot across the inner loop)
/// instead of rescanning the buffer per element. A query leaves the
/// worklist the moment its running minimum drops below its threshold (its
/// admission decision is already determined); the scan stops when the
/// worklist drains. See `ManyQueryArgs` for the output contract.
template <typename BlockMinQueryFn>
inline void MinRawManyBlocked(size_t n_blocks, const ManyQueryArgs& args,
                              BlockMinQueryFn&& block_min) {
  uint32_t* active = args.scratch;
  size_t n_active = args.nq;
  for (uint32_t qi = 0; qi < args.nq; ++qi) {
    active[qi] = qi;
    args.out_min_raw[qi] = kInfinity;
  }
  for (size_t b = 0; b < n_blocks && n_active > 0; ++b) {
    size_t keep = 0;
    for (size_t s = 0; s < n_active; ++s) {
      const uint32_t qi = active[s];
      const double bm = block_min(b, qi);
      if (bm < args.out_min_raw[qi]) args.out_min_raw[qi] = bm;
      if (!(args.out_min_raw[qi] < args.stop_below[qi])) active[keep++] = qi;
    }
    n_active = keep;
  }
}

/// The nine dispatch-table entry points, generated from a target's five
/// block primitives so the glue exists exactly once. `Target` provides:
///
///   static double EuclideanBlockMin(const double* block, size_t dim,
///                                   const double* q);
///   static double ManhattanBlockMin(const double* block, size_t dim,
///                                   const double* q);
///   static void AngularDotBlock(const double* block, size_t dim,
///                               const double* q,
///                               double dots[kPointBlockLanes]);
///   static void EuclideanBlockDists(const double* block, size_t dim,
///                                   const double* q,
///                                   double out[kPointBlockLanes]);
///   static void ManhattanBlockDists(const double* block, size_t dim,
///                                   const double* q,
///                                   double out[kPointBlockLanes]);
///
/// The `*BlockDists` primitives run the same per-lane accumulation as the
/// `*BlockMin` ones but store all 8 lane values (unaligned stores — the
/// caller's output row is a plain vector) instead of reducing to the
/// minimum; the angular per-point epilogue goes through the baseline
/// `AngularBlockDistsFromDots`.
///
/// Each translation unit instantiates this with an internal-linkage target
/// struct, so the instantiation is private to the TU — an ISA-extended
/// target's code can never be picked up by another TU's linker resolution.
/// The angular epilogue goes through the baseline-compiled
/// `AngularBlockMinFromDots` for the same reason.
template <typename Target>
struct KernelEntryPoints {
  static const double* Block(const PointBlockView& pts, size_t b) {
    return pts.blocks + b * PointBlockStride(pts.dim);
  }

  static double AngularBlockMin(const PointBlockView& pts, size_t b,
                                const double* q, double q_norm) {
    alignas(64) double dots[kPointBlockLanes];
    Target::AngularDotBlock(Block(pts, b), pts.dim, q, dots);
    return AngularBlockMinFromDots(dots, pts.norms + b * kPointBlockLanes,
                                   q_norm);
  }

  static double EuclideanMin(const PointBlockView& pts, const double* q,
                             double stop_below) {
    return MinRawBlocked(PointBlockCount(pts.n), stop_below, [&](size_t b) {
      return Target::EuclideanBlockMin(Block(pts, b), pts.dim, q);
    });
  }

  static double ManhattanMin(const PointBlockView& pts, const double* q,
                             double stop_below) {
    return MinRawBlocked(PointBlockCount(pts.n), stop_below, [&](size_t b) {
      return Target::ManhattanBlockMin(Block(pts, b), pts.dim, q);
    });
  }

  static double AngularMin(const PointBlockView& pts, const double* q,
                           double q_norm, double stop_below) {
    return MinRawBlocked(PointBlockCount(pts.n), stop_below, [&](size_t b) {
      return AngularBlockMin(pts, b, q, q_norm);
    });
  }

  static void EuclideanMinMany(const PointBlockView& pts,
                               const ManyQueryArgs& args) {
    MinRawManyBlocked(PointBlockCount(pts.n), args,
                      [&](size_t b, uint32_t qi) {
                        return Target::EuclideanBlockMin(Block(pts, b),
                                                         pts.dim,
                                                         args.queries[qi]);
                      });
  }

  static void ManhattanMinMany(const PointBlockView& pts,
                               const ManyQueryArgs& args) {
    MinRawManyBlocked(PointBlockCount(pts.n), args,
                      [&](size_t b, uint32_t qi) {
                        return Target::ManhattanBlockMin(Block(pts, b),
                                                         pts.dim,
                                                         args.queries[qi]);
                      });
  }

  static void AngularMinMany(const PointBlockView& pts,
                             const ManyQueryArgs& args) {
    MinRawManyBlocked(PointBlockCount(pts.n), args,
                      [&](size_t b, uint32_t qi) {
                        return AngularBlockMin(pts, b, args.queries[qi],
                                               args.query_norms[qi]);
                      });
  }

  static void EuclideanDists(const PointBlockView& pts, const double* q,
                             double* out_raw) {
    const size_t n_blocks = PointBlockCount(pts.n);
    for (size_t b = 0; b < n_blocks; ++b) {
      Target::EuclideanBlockDists(Block(pts, b), pts.dim, q,
                                  out_raw + b * kPointBlockLanes);
    }
  }

  static void ManhattanDists(const PointBlockView& pts, const double* q,
                             double* out_raw) {
    const size_t n_blocks = PointBlockCount(pts.n);
    for (size_t b = 0; b < n_blocks; ++b) {
      Target::ManhattanBlockDists(Block(pts, b), pts.dim, q,
                                  out_raw + b * kPointBlockLanes);
    }
  }

  static void AngularDists(const PointBlockView& pts, const double* q,
                           double q_norm, double* out_raw) {
    alignas(64) double dots[kPointBlockLanes];
    const size_t n_blocks = PointBlockCount(pts.n);
    for (size_t b = 0; b < n_blocks; ++b) {
      Target::AngularDotBlock(Block(pts, b), pts.dim, q, dots);
      AngularBlockDistsFromDots(dots, pts.norms + b * kPointBlockLanes,
                                q_norm, out_raw + b * kPointBlockLanes);
    }
  }

  static KernelOps Ops(std::string_view name) {
    return KernelOps{name,
                     EuclideanMin,
                     ManhattanMin,
                     AngularMin,
                     EuclideanMinMany,
                     ManhattanMinMany,
                     AngularMinMany,
                     EuclideanDists,
                     ManhattanDists,
                     AngularDists};
  }
};

}  // namespace fdm::simd::internal

#endif  // FDM_GEO_SIMD_KERNEL_IMPL_H_
