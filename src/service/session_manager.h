#ifndef FDM_SERVICE_SESSION_MANAGER_H_
#define FDM_SERVICE_SESSION_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/solution.h"
#include "core/solve_cache.h"
#include "service/durable_session.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fdm {

struct SessionManagerOptions {
  /// Root directory; each session lives in `<root_dir>/<name>/`.
  std::string root_dir;
  /// Sessions kept live in memory; beyond this the least-recently-used
  /// idle session is snapshotted and spilled to disk (it reloads lazily on
  /// the next touch). 0 = unlimited.
  size_t max_resident = 0;
  /// Per-session durability knobs (auto-snapshot cadence, WAL batching)
  /// plus the server-wide `solve_threads` query-parallelism override,
  /// applied to every session the manager builds or recovers. All
  /// sessions share ONE process-wide solve pool (core/solve_pool.h) whose
  /// fork-join runs serialize, so concurrent cold SOLVEs on different
  /// sessions queue for the pool rather than multiplying threads — the
  /// manager never oversubscribes the machine through this knob.
  DurableSessionOptions session;
  /// Period of the background snapshot thread, which persists every
  /// resident session with unsnapshotted records. 0 = no background
  /// thread.
  int background_snapshot_ms = 0;
  /// Threads for manager-wide parallel operations (`SnapshotAll`,
  /// shutdown flush): `1` = sequential, `0` = hardware threads.
  int threads = 1;
};

/// Serving-side façade: many named, concurrently accessible durable
/// sessions, each a `StreamSink` built from a spec string.
///
/// Concurrency model: a manager-level mutex guards only the name→entry map
/// and LRU bookkeeping; every session has its own *reader–writer* lock
/// (`std::shared_mutex`), so ingest into different sessions proceeds in
/// parallel (and each sink can additionally parallelize `ObserveBatch`
/// internally over its own rungs/shards), while queries (`Solve`, `Stats`)
/// take the lock shared: they run concurrently with each other and are
/// answered from the session's `SolveCache` whenever the sink's state
/// version has not moved — a cached SOLVE never serializes against STATS
/// on the same session or against any other session's ingest.
/// Manager-wide sweeps (`SnapshotAll`, destructor flush) fan the sessions
/// out over a `util/thread_pool.h` pool.
///
/// Each entry owns its `SolveCache` and re-attaches it whenever the
/// session is (re)loaded, so memoized solutions survive LRU spills and
/// crash-recovery drills: state versions are chunking-invariant under WAL
/// replay, so a cache entry that still matches the recovered sink's
/// version is still bit-exact.
///
/// Lifecycle: `CreateSession` builds a fresh sink + WAL; a session touched
/// after a spill (or after a restart — `Create` scans `root_dir`) is
/// recovered transparently from its snapshot + WAL tail. The destructor
/// stops the background thread and snapshots every resident session, so a
/// clean shutdown restarts with empty WAL tails.
class SessionManager {
 public:
  static Result<std::unique_ptr<SessionManager>> Create(
      SessionManagerOptions options);

  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a new named session from a sink spec (see
  /// `service/sink_spec.h`). Names are path components: `[A-Za-z0-9._-]+`.
  Status CreateSession(const std::string& name, const std::string& spec);

  /// Ingest. The point's coordinate span only needs to live for the call.
  Status Observe(const std::string& name, const StreamPoint& point);
  Status ObserveBatch(const std::string& name,
                      std::span<const StreamPoint> batch);

  /// Duplicate-aware ingest (see `DurableSession::Ingest`): reports how
  /// many points were applied vs rejected as exact duplicates by a
  /// `dedup=on` session. `as_batch` picks the element or batch machinery,
  /// matching `Observe`/`ObserveBatch` accounting.
  Result<IngestOutcome> Ingest(const std::string& name,
                               std::span<const StreamPoint> batch,
                               bool as_batch);

  Result<Solution> Solve(const std::string& name);

  /// Explicit durability points.
  Status Snapshot(const std::string& name);
  Status SnapshotAll();

  /// Drops the in-memory state of a session WITHOUT snapshotting — the
  /// next touch recovers from disk (snapshot + WAL tail). This is the
  /// kill-point used by crash-recovery tests and the serve CLI's RESTORE.
  Status DropResident(const std::string& name);

  struct SessionStats {
    std::string name;
    std::string spec;
    bool resident = false;
    int64_t observed = 0;
    size_t stored = 0;
    int64_t snapshot_seq = 0;
    /// Monotone sink state version (see `StreamSink::StateVersion`).
    uint64_t state_version = 0;
    /// Query-path counters: solve-cache hits/misses plus latency
    /// percentiles of this session's cached serves and cold computes
    /// (from the per-cache histograms — real in both metric configs).
    /// 0 until at least one sample exists in the respective series.
    uint64_t solve_hits = 0;
    uint64_t solve_misses = 0;
    double solve_p50_cached_ms = 0.0;
    double solve_p99_cached_ms = 0.0;
    double solve_p50_cold_ms = 0.0;
    double solve_p99_cold_ms = 0.0;
    /// Cumulative ingest/durability counters, footer-persisted so they
    /// survive LRU spill and crash recovery (see `SessionIngestCounters`).
    int64_t kept = 0;
    int64_t ingest_batches = 0;
    int64_t snapshots_taken = 0;
    double snapshot_write_ms_total = 0.0;
    int64_t restores = 0;
    int64_t replayed_records = 0;
    /// Exactly-once ingest surface (zeros when the spec says dedup=off):
    /// exact duplicates rejected before the WAL, the filter's resident
    /// bytes, and its capacity doublings.
    bool dedup = false;
    int64_t duplicates_rejected = 0;
    uint64_t filter_bytes = 0;
    uint64_t filter_grows = 0;
    /// Distance-kernel dispatch target serving this process ("scalar" |
    /// "avx2" | "neon") — process-wide, surfaced per STATS reply so bench
    /// recordings against the server are self-describing.
    std::string kernel;
  };
  Result<SessionStats> Stats(const std::string& name);

  /// True iff `Solve(name)` right now would be served from the session's
  /// solve cache. Advisory (state can move between the probe and the
  /// query) and deliberately cheap: a spilled or unknown session reports
  /// false without loading anything — reloading is exactly the kind of
  /// work an overloaded front end wants to classify as cold.
  bool SolveLikelyCached(const std::string& name) const;

  /// All known sessions (resident and spilled), sorted by name.
  std::vector<std::string> SessionNames() const;

  size_t ResidentCount() const;

 private:
  struct Entry {
    /// Reader–writer session lock: ingest/snapshot/spill take it
    /// exclusive, queries (Solve/Stats) shared.
    std::shared_mutex mu;
    std::unique_ptr<DurableSession> session;  // null = spilled to disk
    /// Mirrors `session != nullptr`, updated at every transition while
    /// `mu` is held. Scans that only hold the MAP mutex (LRU victim
    /// selection, SnapshotAll collection) read this flag — reading
    /// `session` itself there would race with a concurrent load/spill.
    std::atomic<bool> resident{false};
    /// The session's solve cache. Owned by the entry (not the session) so
    /// memoized solutions survive spill/reload; re-attached on every load.
    std::shared_ptr<SolveCache> solve_cache = std::make_shared<SolveCache>();
    uint64_t last_used = 0;
  };

  explicit SessionManager(SessionManagerOptions options);

  std::string DirFor(const std::string& name) const {
    return options_.root_dir + "/" + name;
  }

  /// Returns the entry for `name`, recovering it from disk if spilled, and
  /// bumps its LRU stamp. May spill another (least-recently-used) session
  /// to honor `max_resident`.
  Result<std::shared_ptr<Entry>> Resident(const std::string& name);

  /// Runs `fn(session)` with the entry lock held exclusively,
  /// transparently reloading if the session was spilled between `Resident`
  /// and the lock (the lock is released before each retry — never recurse
  /// while holding it).
  template <typename Fn>
  auto WithSession(const std::string& name, Fn&& fn)
      -> decltype(fn(std::declval<DurableSession&>()));

  /// As `WithSession`, but holds the entry lock *shared*: `fn` gets a
  /// const session and may run concurrently with other shared holders.
  /// Ingest and snapshots (exclusive holders) are excluded, which is what
  /// makes it safe for a cache-missing `Solve` to read the sink.
  template <typename Fn>
  auto WithSessionShared(const std::string& name, Fn&& fn)
      -> decltype(fn(std::declval<const DurableSession&>()));

  /// Spills LRU sessions until the resident count is within bounds.
  void EnforceResidencyLimit();

  void BackgroundLoop();

  SessionManagerOptions options_;
  mutable std::mutex mu_;  // guards entries_ + tick_
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  uint64_t tick_ = 0;
  /// Live-session count, maintained at every load/spill transition so the
  /// per-operation residency check is O(1); the O(sessions) LRU scan only
  /// runs once the cap is actually exceeded.
  std::atomic<size_t> resident_count_{0};

  BatchParallelism sweep_parallelism_;

  std::thread background_;
  std::mutex background_mu_;
  std::condition_variable background_cv_;
  bool stopping_ = false;
};

}  // namespace fdm

#endif  // FDM_SERVICE_SESSION_MANAGER_H_
