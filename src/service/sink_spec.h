#ifndef FDM_SERVICE_SINK_SPEC_H_
#define FDM_SERVICE_SINK_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/stream_sink.h"
#include "geo/metric.h"
#include "util/status.h"

namespace fdm {

/// A textual, dataset-free description of a streaming sink — the unit of
/// configuration the service layer stores per session. Unlike the harness
/// registry (which reads k/dim/metric off a `Dataset`), a serving session
/// has no dataset: the spec carries everything needed to build the sink
/// before the first element arrives.
///
/// Format: whitespace-separated `key=value` tokens, e.g.
///
///   algo=sfdm2 dim=4 quotas=2,2,3 metric=euclidean eps=0.1 dmin=0.01
///   dmax=50
///
/// Keys:
///   algo     streaming_dm | sfdm1 | sfdm2 | adaptive | sharded |
///            sliding_window   (required)
///   dim      point dimension (required)
///   k        solution size (unconstrained kinds; required for them)
///   quotas   comma-separated per-group quotas (fair kinds; required)
///   metric   euclidean | manhattan | angular      (default euclidean)
///   eps      guess-ladder ε                        (default 0.1)
///   dmin     lower distance bound (required unless algo=adaptive)
///   dmax     upper distance bound (required unless algo=adaptive)
///   threads  ObserveBatch parallelism              (default 1)
///   solve_threads  Solve() parallelism over the shared solve pool
///            (1 = sequential, 0 = all hardware threads; bit-identity
///            preserving — see core/solve_pool.h)     (default 1)
///   shards   shard count (algo=sharded)            (default 4)
///   window   window length (algo=sliding_window; required for it)
///   checkpoints  window replicas (algo=sliding_window, default 4)
///   max_rungs    ladder cap (algo=adaptive, default 4096)
///   dedup    on | off — exactly-once ingest: an id-keyed fingerprint
///            filter in front of admission makes re-OBSERVEd points
///            idempotent no-ops (no WAL record, no state-version bump).
///            Session-layer concern; the sink itself ignores it.
///            (default off — sliding-window streams legitimately
///            re-observe ids)
struct SinkSpec {
  std::string algo;
  size_t dim = 0;
  int k = 0;
  std::vector<int> quotas;
  MetricKind metric = MetricKind::kEuclidean;
  double epsilon = 0.1;
  double d_min = 0.0;
  double d_max = 0.0;
  int threads = 1;
  int solve_threads = 1;
  size_t shards = 4;
  int64_t window = 0;
  int64_t checkpoints = 4;
  size_t max_rungs = 4096;
  bool dedup = false;

  /// Parses the `key=value` form; unknown keys and malformed values are
  /// `InvalidArgument` errors (a serving config typo should fail loudly).
  static Result<SinkSpec> Parse(std::string_view text);

  /// Canonical round-trippable text form.
  std::string ToString() const;

  /// Builds a fresh sink. Fails if required keys for the chosen algorithm
  /// are missing or inconsistent.
  Result<std::unique_ptr<StreamSink>> MakeSink() const;
};

/// `SinkSpec::Parse` + `MakeSink` in one step.
Result<std::unique_ptr<StreamSink>> MakeSinkFromSpec(std::string_view text);

}  // namespace fdm

#endif  // FDM_SERVICE_SINK_SPEC_H_
