#ifndef FDM_SERVICE_DEDUP_FILTER_H_
#define FDM_SERVICE_DEDUP_FILTER_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace fdm {

class SnapshotWriter;
class SnapshotReader;

/// Exact-duplicate guard keyed by point id: a cuckoo-style 16-bit
/// fingerprint filter (4-slot buckets, two candidate buckets per key,
/// capacity doubling under load — the dynamic-flat-filter growth idea)
/// in front of a compact open-addressing id set.
///
/// The division of labor is what makes the guard both fast and *exact*:
///
///  * The fingerprint filter answers the common case — "this id was never
///    seen" — from at most two cache lines, with zero false negatives
///    (every inserted id's fingerprint lives in one of its two buckets;
///    a cuckoo kick only ever moves a fingerprint to the other bucket of
///    the same pair, so reachability is invariant).
///  * A filter *hit* is only "maybe": 16-bit fingerprints collide. Every
///    hit falls back to the exact id set, so a genuinely new point is
///    NEVER dropped (the explicit false-positive policy) and a true
///    duplicate is never admitted. `FalsePositives()` counts how often
///    the fallback refuted the filter.
///
/// Growth: inserts that fail the bounded cuckoo kick walk — or push
/// occupancy past ~94% — double the bucket count and rebuild the filter
/// from the exact set (ids are always available, which is what lets a
/// fingerprint-only structure grow at all). `Grows()` counts doublings.
///
/// Ids must be non-negative; the session layer routes negative ids (no
/// identity) around the guard entirely.
///
/// Determinism: the kick walk uses an internal deterministic generator,
/// so the same insert sequence always yields the same structure — there
/// is no timing or randomness anywhere, which keeps crash-recovery and
/// follower rebuilds reproducible.
///
/// Not thread-safe; the owning session serializes access like the sink.
class DedupFilter {
 public:
  DedupFilter();

  /// Inserts `id` if absent. Returns true iff the id was new (the caller
  /// should admit the point), false iff it was already present (exact
  /// duplicate — reject). O(1) amortized.
  bool InsertIfAbsent(int64_t id);

  /// Exact membership: false is guaranteed-absent, true is
  /// guaranteed-present (filter hits are confirmed against the id set).
  bool Contains(int64_t id) const;

  /// Distinct ids inserted.
  size_t Size() const { return size_; }

  /// Resident bytes of the filter + exact set backing arrays.
  size_t MemoryBytes() const;

  /// Filter capacity doublings so far (restored across snapshots).
  uint64_t Grows() const { return grows_; }

  /// Filter hits refuted by the exact set (restored across snapshots).
  uint64_t FalsePositives() const { return false_positives_; }

  /// Drops every id; capacity and cumulative counters are kept.
  void Clear();

  /// Appends the filter state to `writer` (bucket count, counters, and
  /// the exact ids — the filter itself is rebuilt on load, so the format
  /// is independent of the in-memory slot layout).
  void Serialize(SnapshotWriter& writer) const;

  /// Rebuilds a filter from `Serialize` output. Fails loudly on
  /// malformed bytes — callers treat that as "no filter persisted".
  static Result<DedupFilter> Deserialize(SnapshotReader& reader);

 private:
  static constexpr size_t kSlotsPerBucket = 4;
  static constexpr size_t kInitialBuckets = 64;  // 512 B of fingerprints
  static constexpr int kMaxKicks = 256;

  /// The two hash views of one id, derived once per operation.
  struct Probe {
    uint16_t fp = 0;   // never 0 (0 marks an empty slot)
    size_t bucket1 = 0;
    size_t bucket2 = 0;
  };
  Probe MakeProbe(int64_t id) const;
  size_t AltBucket(size_t bucket, uint16_t fp) const;

  bool FilterMaybeContains(const Probe& probe) const;
  /// Places `fp` by cuckoo insertion; false = kick walk exhausted
  /// (caller grows and retries).
  bool FilterInsert(uint16_t fp, size_t bucket1);
  /// Doubles the bucket count and re-inserts every id from the exact set.
  void GrowFilter();

  bool ExactContains(int64_t id) const;
  void ExactInsert(int64_t id);  // id must be absent
  void ExactGrowIfNeeded();

  // Fingerprint table: bucket-major, 0 = empty.
  std::vector<uint16_t> slots_;
  size_t bucket_mask_ = 0;  // bucket count - 1 (power of two)

  // Exact id set: open addressing, linear probing, -1 = empty.
  std::vector<int64_t> ids_;
  size_t id_mask_ = 0;

  size_t size_ = 0;
  uint64_t grows_ = 0;
  uint64_t false_positives_ = 0;
  uint64_t kick_state_ = 0x243f6a8885a308d3ull;  // deterministic kick walk
};

}  // namespace fdm

#endif  // FDM_SERVICE_DEDUP_FILTER_H_
