#include "service/session_manager.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "geo/simd/kernel_dispatch.h"
#include "obs/metrics.h"
#include "service/sink_spec.h"

namespace fdm {

namespace {

obs::Gauge& ResidentGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "fdm_sessions_resident", "sessions currently live in memory");
  return g;
}

bool ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  if (name[0] == '.') return false;  // no hidden dirs / "." / ".."
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

SessionManager::SessionManager(SessionManagerOptions options)
    : options_(std::move(options)),
      sweep_parallelism_(options_.threads) {}

Result<std::unique_ptr<SessionManager>> SessionManager::Create(
    SessionManagerOptions options) {
  if (options.root_dir.empty()) {
    return Status::InvalidArgument("root_dir must be set");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.root_dir, ec);
  if (ec) {
    return Status::IoError("cannot create root dir " + options.root_dir +
                           ": " + ec.message());
  }
  std::unique_ptr<SessionManager> manager(
      new SessionManager(std::move(options)));

  // Discover sessions from a previous process lifetime; they stay spilled
  // (entry without a live DurableSession) until first touched.
  for (const auto& entry : std::filesystem::directory_iterator(
           manager->options_.root_dir, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (!ValidSessionName(name)) continue;
    if (!DurableSession::Exists(entry.path().string())) continue;
    manager->entries_.emplace(name, std::make_shared<Entry>());
  }

  if (manager->options_.background_snapshot_ms > 0) {
    manager->background_ = std::thread([m = manager.get()] {
      m->BackgroundLoop();
    });
  }
  return manager;
}

SessionManager::~SessionManager() {
  if (background_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(background_mu_);
      stopping_ = true;
    }
    background_cv_.notify_all();
    background_.join();
  }
  // Clean shutdown = snapshot everything so the next start replays nothing.
  (void)SnapshotAll();
}

Status SessionManager::CreateSession(const std::string& name,
                                     const std::string& spec) {
  if (!ValidSessionName(name)) {
    return Status::InvalidArgument("invalid session name '" + name + "'");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.count(name) != 0) {
      return Status::InvalidArgument("session '" + name + "' already exists");
    }
  }
  // Build the session BEFORE publishing the entry: a concurrent touch of
  // the name must either miss the map entirely ("no session") or find a
  // fully working session, never a half-created directory. Two racing
  // CreateSession calls are arbitrated by the directory itself —
  // DurableSession::Create fails for the loser.
  auto session = DurableSession::Create(DirFor(name), spec, options_.session);
  if (!session.ok()) return session.status();
  auto entry = std::make_shared<Entry>();
  entry->session =
      std::make_unique<DurableSession>(std::move(session.value()));
  entry->session->AttachSolveCache(entry->solve_cache);
  entry->resident.store(true, std::memory_order_release);
  resident_count_.fetch_add(1, std::memory_order_relaxed);
  ResidentGauge().Set(static_cast<double>(
      resident_count_.load(std::memory_order_relaxed)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry->last_used = ++tick_;
    if (!entries_.emplace(name, entry).second) {
      // Lost a pure in-memory race for the name after our directory won
      // (e.g. a concurrent rescan registered it); keep the existing entry.
      resident_count_.fetch_sub(1, std::memory_order_relaxed);
      ResidentGauge().Set(static_cast<double>(
          resident_count_.load(std::memory_order_relaxed)));
      return Status::InvalidArgument("session '" + name + "' already exists");
    }
  }
  EnforceResidencyLimit();
  return Status::Ok();
}

Result<std::shared_ptr<SessionManager::Entry>> SessionManager::Resident(
    const std::string& name) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::InvalidArgument("no session named '" + name + "'");
    }
    entry = it->second;
    entry->last_used = ++tick_;
  }
  {
    std::unique_lock<std::shared_mutex> entry_lock(entry->mu);
    if (entry->session == nullptr) {
      // Spilled (or inherited from a previous process): recover from the
      // newest snapshot + WAL tail. Re-attach the entry's cache — state
      // versions survive recovery bit-exactly, so a still-matching cached
      // solution is served on the first post-recovery query.
      auto session = DurableSession::Open(DirFor(name), options_.session);
      if (!session.ok()) return session.status();
      entry->session =
          std::make_unique<DurableSession>(std::move(session.value()));
      entry->session->AttachSolveCache(entry->solve_cache);
      entry->resident.store(true, std::memory_order_release);
      resident_count_.fetch_add(1, std::memory_order_relaxed);
      ResidentGauge().Set(static_cast<double>(
          resident_count_.load(std::memory_order_relaxed)));
    }
  }
  EnforceResidencyLimit();
  return entry;
}

void SessionManager::EnforceResidencyLimit() {
  if (options_.max_resident == 0) return;
  // O(1) fast path: the common case (under the cap) must not pay an
  // O(sessions) scan under the global mutex on every Observe/Solve.
  if (resident_count_.load(std::memory_order_relaxed) <=
      options_.max_resident) {
    return;
  }
  for (;;) {
    std::shared_ptr<Entry> victim;
    {
      std::lock_guard<std::mutex> lock(mu_);
      size_t resident = 0;
      uint64_t oldest = 0;
      uint64_t newest = 0;
      for (const auto& [name, entry] : entries_) {
        // Only the atomic mirror may be read here: `session` is written
        // under the entry mutex, which this scan does not hold.
        if (!entry->resident.load(std::memory_order_acquire)) continue;
        ++resident;
        if (victim == nullptr || entry->last_used < oldest) {
          victim = entry;
          oldest = entry->last_used;
        }
        newest = std::max(newest, entry->last_used);
      }
      if (resident <= options_.max_resident) return;
      // Never spill the most recently touched session — it is the one the
      // caller is about to use.
      if (victim == nullptr || victim->last_used == newest) return;
    }
    std::unique_lock<std::shared_mutex> victim_lock(victim->mu);
    if (victim->session == nullptr) continue;  // raced with another spill
    // Spill = snapshot (so recovery is instant, no WAL replay) + drop.
    if (Status s = victim->session->TakeSnapshot(); !s.ok()) {
      // Leave it resident rather than lose data; surface nothing — the
      // next explicit Snapshot()/shutdown will retry and report.
      return;
    }
    victim->session.reset();
    victim->resident.store(false, std::memory_order_release);
    resident_count_.fetch_sub(1, std::memory_order_relaxed);
    ResidentGauge().Set(static_cast<double>(
        resident_count_.load(std::memory_order_relaxed)));
  }
}

template <typename Fn>
auto SessionManager::WithSession(const std::string& name, Fn&& fn)
    -> decltype(fn(std::declval<DurableSession&>())) {
  for (;;) {
    auto entry = Resident(name);
    if (!entry.ok()) return entry.status();
    std::unique_lock<std::shared_mutex> lock((*entry)->mu);
    // The session can be spilled between Resident() and the lock; the
    // guard's scope is the loop body, so retrying releases it first (the
    // entry mutex is not recursive).
    if ((*entry)->session == nullptr) continue;
    return fn(*(*entry)->session);
  }
}

template <typename Fn>
auto SessionManager::WithSessionShared(const std::string& name, Fn&& fn)
    -> decltype(fn(std::declval<const DurableSession&>())) {
  for (;;) {
    auto entry = Resident(name);
    if (!entry.ok()) return entry.status();
    std::shared_lock<std::shared_mutex> lock((*entry)->mu);
    // Same spill race as WithSession: reloading needs the exclusive lock,
    // so drop the shared one and go back through Resident().
    if ((*entry)->session == nullptr) continue;
    return fn(static_cast<const DurableSession&>(*(*entry)->session));
  }
}

Status SessionManager::Observe(const std::string& name,
                               const StreamPoint& point) {
  return WithSession(
      name, [&](DurableSession& session) { return session.Observe(point); });
}

Status SessionManager::ObserveBatch(const std::string& name,
                                    std::span<const StreamPoint> batch) {
  return WithSession(name, [&](DurableSession& session) {
    return session.ObserveBatch(batch);
  });
}

Result<IngestOutcome> SessionManager::Ingest(
    const std::string& name, std::span<const StreamPoint> batch,
    bool as_batch) {
  return WithSession(name, [&](DurableSession& session) {
    return session.Ingest(batch, as_batch);
  });
}

Result<Solution> SessionManager::Solve(const std::string& name) {
  // Shared lock: a cache hit copies the memoized solution without ever
  // touching the sink; a miss runs the post-processing while holding the
  // lock shared, which still excludes ingest (exclusive) but lets STATS
  // and other SOLVEs through. SolveCache serializes the compute itself.
  return WithSessionShared(name, [](const DurableSession& session) {
    return session.Solve();
  });
}

bool SessionManager::SolveLikelyCached(const std::string& name) const {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    entry = it->second;
  }
  std::shared_lock<std::shared_mutex> entry_lock(entry->mu);
  if (entry->session == nullptr) return false;  // spilled: a reload is cold
  return entry->solve_cache->IsCachedAt(entry->session->StateVersion());
}

Status SessionManager::Snapshot(const std::string& name) {
  return WithSession(name, [](DurableSession& session) {
    return session.TakeSnapshot();
  });
}

Status SessionManager::DropResident(const std::string& name) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::InvalidArgument("no session named '" + name + "'");
    }
    entry = it->second;
  }
  std::unique_lock<std::shared_mutex> lock(entry->mu);
  // Deliberately no snapshot: the in-memory sink state is discarded and
  // must be reconstructed from snapshot + WAL tail. Note the WAL
  // destructor still flushes buffered records, so this models a graceful
  // kill; power-loss artifacts (torn/unsynced tails) are exercised by
  // wal_test and the torn-tail session test, which mutilate the files
  // directly.
  if (entry->session != nullptr) {
    entry->session.reset();
    entry->resident.store(false, std::memory_order_release);
    resident_count_.fetch_sub(1, std::memory_order_relaxed);
    ResidentGauge().Set(static_cast<double>(
        resident_count_.load(std::memory_order_relaxed)));
  }
  return Status::Ok();
}

Result<SessionManager::SessionStats> SessionManager::Stats(
    const std::string& name) {
  // Record residency BEFORE the query: reading the counters below loads a
  // spilled session, so sampling afterwards would always report true. The
  // entry mutex is taken only after releasing the map mutex (the lock
  // order everywhere else), so the sample is a snapshot, not a guarantee.
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::InvalidArgument("no session named '" + name + "'");
    }
    entry = it->second;
  }
  bool was_resident = false;
  {
    std::shared_lock<std::shared_mutex> entry_lock(entry->mu);
    was_resident = entry->session != nullptr;
  }
  return WithSessionShared(
      name, [&](const DurableSession& session) -> Result<SessionStats> {
        SessionStats stats;
        stats.name = name;
        stats.spec = session.spec();
        stats.resident = was_resident;
        stats.observed = session.ObservedElements();
        stats.stored = session.StoredElements();
        stats.snapshot_seq = session.SnapshotSeq();
        stats.state_version = session.StateVersion();
        const SolveCache::Stats cache = session.SolveCacheStats();
        stats.solve_hits = cache.hits;
        stats.solve_misses = cache.misses;
        constexpr double kNsToMs = 1e-6;
        stats.solve_p50_cached_ms = cache.hit_ns.Percentile(0.5) * kNsToMs;
        stats.solve_p99_cached_ms = cache.hit_ns.Percentile(0.99) * kNsToMs;
        stats.solve_p50_cold_ms = cache.miss_ns.Percentile(0.5) * kNsToMs;
        stats.solve_p99_cold_ms = cache.miss_ns.Percentile(0.99) * kNsToMs;
        const SessionIngestCounters& counters = session.IngestCounters();
        stats.kept = counters.kept_total;
        stats.ingest_batches = counters.ingest_batches;
        stats.snapshots_taken = counters.snapshots_taken;
        stats.snapshot_write_ms_total = counters.snapshot_write_ms_total;
        stats.restores = counters.restores;
        stats.replayed_records = counters.replayed_records;
        stats.dedup = session.DedupEnabled();
        stats.duplicates_rejected = session.DuplicatesRejected();
        if (const DedupFilter* filter = session.dedup_filter()) {
          stats.filter_bytes = filter->MemoryBytes();
          stats.filter_grows = filter->Grows();
        }
        stats.kernel = std::string(simd::ActiveKernelName());
        return stats;
      });
}

std::vector<std::string> SessionManager::SessionNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

size_t SessionManager::ResidentCount() const {
  return resident_count_.load(std::memory_order_relaxed);
}

Status SessionManager::SnapshotAll() {
  // Collect the resident entries under the map lock, then snapshot them
  // outside it, fanned over the pool (each task takes its session's own
  // mutex — sessions are disjoint, so this parallelizes cleanly).
  std::vector<std::shared_ptr<Entry>> resident;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) {
      if (entry->resident.load(std::memory_order_acquire)) {
        resident.push_back(entry);
      }
    }
  }
  std::vector<Status> results(resident.size());
  sweep_parallelism_.Run(resident.size(), [&](size_t i) {
    std::unique_lock<std::shared_mutex> lock(resident[i]->mu);
    if (resident[i]->session == nullptr) return;  // spilled meanwhile
    results[i] = resident[i]->session->TakeSnapshot();
  });
  for (const Status& s : results) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

void SessionManager::BackgroundLoop() {
  const auto period =
      std::chrono::milliseconds(options_.background_snapshot_ms);
  std::unique_lock<std::mutex> lock(background_mu_);
  while (!stopping_) {
    background_cv_.wait_for(lock, period, [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    (void)SnapshotAll();  // periodic durability sweep; errors retried next tick
    lock.lock();
  }
}

}  // namespace fdm
