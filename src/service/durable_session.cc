#include "service/durable_session.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "core/sink_snapshot.h"
#include "obs/metrics.h"
#include "service/session_layout.h"
#include "service/sink_spec.h"
#include "util/binary_io.h"
#include "util/timer.h"

namespace fdm {

namespace {

constexpr std::string_view kSessionTag = "fdm.session";
constexpr std::string_view kReplAdvertTag = "fdm.repl";
constexpr std::string_view kSessionStatsTag = "fdm.session.stats";
constexpr std::string_view kSessionDedupTag = "fdm.session.dedup";

obs::Counter& ObservedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_ingest_points_observed_total",
      "stream points offered to durable sessions");
  return c;
}
obs::Counter& KeptCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_ingest_points_kept_total",
      "sink mutations (points admitted by at least one rung)");
  return c;
}
obs::Histogram& BatchSizeHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_ingest_batch_points", "points per ObserveBatch call");
  return h;
}
obs::Histogram& SnapshotWriteHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_snapshot_write_ns", "latency of session snapshot writes",
      /*slow_threshold_ns=*/1'000'000'000);
  return h;
}
obs::Counter& SnapshotBytesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_snapshot_bytes_total", "session snapshot payload bytes written");
  return c;
}
obs::Histogram& RestoreHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_session_restore_ns",
      "latency of session Opens (snapshot restore + WAL tail replay)",
      /*slow_threshold_ns=*/5'000'000'000);
  return h;
}
obs::Counter& RestoresCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_session_restores_total", "sessions restored by Open");
  return c;
}
obs::Counter& DedupCheckedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_dedup_checked_total", "point ids probed against dedup filters");
  return c;
}
obs::Counter& DedupRejectedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_dedup_rejected_total",
      "exact duplicates rejected before the WAL");
  return c;
}
obs::Counter& DedupFilterGrowsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_dedup_filter_grows_total", "dedup filter capacity doublings");
  return c;
}
obs::Histogram& DedupProbeHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_dedup_probe_ns",
      "latency of one dedup filter probe+insert (1/64 sampled)");
  return h;
}

void WriteStatsFooter(SnapshotWriter& writer,
                      const SessionIngestCounters& counters) {
  writer.WriteString(kSessionStatsTag);
  writer.WriteI64(counters.kept_total);
  writer.WriteI64(counters.ingest_batches);
  writer.WriteI64(counters.snapshots_taken);
  writer.WriteDouble(counters.snapshot_write_ms_total);
  writer.WriteI64(counters.restores);
  writer.WriteI64(counters.replayed_records);
}

// Lenient by design: a snapshot written before the footer existed simply
// has no trailing bytes (counters stay zero), and any malformed tail —
// impossible from corruption, since the file checksum covers the whole
// payload, but possible from a foreign writer — must never fail the
// restore over lost statistics. The reader is not used again afterwards
// unless this returns true (the dedup footer follows only a well-formed
// stats footer, so a failed parse here ends footer reading entirely).
bool ReadStatsFooter(SnapshotReader& reader, SessionIngestCounters& out) {
  if (reader.Remaining() == 0) return false;
  SessionIngestCounters parsed;
  const std::string tag = reader.ReadString();
  parsed.kept_total = reader.ReadI64();
  parsed.ingest_batches = reader.ReadI64();
  parsed.snapshots_taken = reader.ReadI64();
  parsed.snapshot_write_ms_total = reader.ReadDouble();
  parsed.restores = reader.ReadI64();
  parsed.replayed_records = reader.ReadI64();
  if (!reader.ok() || tag != kSessionStatsTag) return false;
  out = parsed;
  return true;
}

// The dedup footer rides after the stats footer under its own tag, same
// leniency contract: absent on pre-dedup snapshots and on dedup=off
// sessions, and a malformed tail costs the filter (rebuilt from WAL
// replay), never the restore. The stats footer layout itself is frozen —
// adding fields there would make old snapshots unreadable, which is why
// dedup state gets its own footer.
void WriteDedupFooter(SnapshotWriter& writer, int64_t duplicates_rejected,
                      const DedupFilter& filter) {
  writer.WriteString(kSessionDedupTag);
  writer.WriteI64(duplicates_rejected);
  filter.Serialize(writer);
}

}  // namespace

std::unique_ptr<DedupFilter> ReadSessionFooters(
    SnapshotReader& reader, SessionIngestCounters* counters,
    int64_t* duplicates_rejected) {
  SessionIngestCounters scratch;
  if (!ReadStatsFooter(reader, counters != nullptr ? *counters : scratch)) {
    return nullptr;
  }
  if (reader.Remaining() == 0) return nullptr;  // pre-dedup snapshot
  const std::string tag = reader.ReadString();
  const int64_t rejected = reader.ReadI64();
  if (!reader.ok() || tag != kSessionDedupTag) return nullptr;
  auto filter = DedupFilter::Deserialize(reader);
  if (!filter.ok()) return nullptr;
  if (duplicates_rejected != nullptr) *duplicates_rejected = rejected;
  return std::make_unique<DedupFilter>(std::move(filter.value()));
}

Result<std::unique_ptr<StreamSink>> RestoreSessionSnapshot(
    SnapshotReader& reader, std::string_view expected_spec,
    int64_t expected_seq) {
  const std::string tag = reader.ReadString();
  const std::string stored_spec = reader.ReadString();
  const int64_t seq = reader.ReadI64();
  if (!reader.ok()) return reader.status();
  if (tag != kSessionTag) {
    return Status::IoError("not a session snapshot (tag '" + tag + "')");
  }
  // A snapshot written under a different spec (edited SPEC file, foreign
  // file copied in) must not restore silently — the caller's configuration
  // and the restored sink's would disagree.
  if (stored_spec != expected_spec) {
    return Status::IoError("session snapshot spec mismatch");
  }
  if (expected_seq >= 0 && seq != expected_seq) {
    return Status::IoError("session snapshot seq mismatch: header says " +
                           std::to_string(seq) + ", expected " +
                           std::to_string(expected_seq));
  }
  auto restored = RestoreSink(reader);
  if (!restored.ok()) return restored.status();
  if ((*restored)->ObservedElements() != seq) {
    return Status::IoError("session snapshot observed-count mismatch");
  }
  return restored;
}

Result<ReplicationAdvert> ReadReplicationAdvert(const std::string& dir) {
  auto reader = SnapshotReader::FromFile(SessionReplAdvertPath(dir));
  if (!reader.ok()) return reader.status();
  const std::string tag = reader->ReadString();
  ReplicationAdvert advert;
  advert.seq = reader->ReadI64();
  advert.state_version = reader->ReadU64();
  if (!reader->ok() || tag != kReplAdvertTag) {
    return Status::IoError("malformed replication advert in " + dir);
  }
  return advert;
}

std::string DurableSession::SnapshotPath(int64_t seq) const {
  return SessionSnapDir(dir_) + "/" + SessionSnapshotFileName(seq);
}

bool DurableSession::Exists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::exists(SessionSpecPath(dir), ec);
}

Result<DurableSession> DurableSession::Create(std::string dir,
                                              std::string spec,
                                              DurableSessionOptions options) {
  if (options.keep_snapshots == 0) options.keep_snapshots = 1;
  if (Exists(dir)) {
    return Status::InvalidArgument("session dir already holds a session: " +
                                   dir + " (use Open)");
  }
  auto parsed = SinkSpec::Parse(spec);
  if (!parsed.ok()) return parsed.status();
  auto sink = parsed->MakeSink();
  if (!sink.ok()) return sink.status();

  std::error_code ec;
  std::filesystem::create_directories(SessionSnapDir(dir), ec);
  if (ec) {
    return Status::IoError("cannot create session dir " + dir + ": " +
                           ec.message());
  }
  auto wal = WriteAheadLog::Open(SessionWalDir(dir), options.wal);
  if (!wal.ok()) return wal.status();

  // SPEC is written last: its existence marks the directory as a session.
  {
    std::ofstream out(SessionSpecPath(dir));
    out << spec << "\n";
    if (!out) return Status::IoError("cannot write " + SessionSpecPath(dir));
  }

  DurableSession session(std::move(dir), std::move(spec), options);
  session.sink_ = std::move(sink.value());
  if (options.solve_threads != 0) {
    session.sink_->SetSolveThreads(options.solve_threads);
  }
  session.wal_ =
      std::make_unique<WriteAheadLog>(std::move(wal.value()));
  session.dim_ = parsed->dim;
  if (parsed->dedup) session.dedup_ = std::make_unique<DedupFilter>();
  return session;
}

Result<DurableSession> DurableSession::Open(std::string dir,
                                            DurableSessionOptions options) {
  if (options.keep_snapshots == 0) options.keep_snapshots = 1;
  std::string spec;
  {
    std::ifstream in(SessionSpecPath(dir));
    if (!in || !std::getline(in, spec)) {
      return Status::IoError("no session at " + dir + " (missing SPEC)");
    }
  }
  auto parsed = SinkSpec::Parse(spec);
  if (!parsed.ok()) return parsed.status();

  // Newest loadable snapshot wins; a corrupt snapshot (torn write, bit
  // rot — checksums catch both) falls back to the previous one, and
  // ultimately to a fresh sink replaying the whole WAL.
  Timer restore_timer;
  std::unique_ptr<StreamSink> sink;
  std::unique_ptr<DedupFilter> dedup;
  int64_t snapshot_seq = 0;
  int64_t duplicates_rejected = 0;
  SessionIngestCounters counters;
  auto snapshots = ListSessionSnapshots(SessionSnapDir(dir));
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    auto reader = SnapshotReader::FromFile(it->second);
    if (!reader.ok()) continue;
    auto restored = RestoreSessionSnapshot(*reader, spec, it->first);
    if (!restored.ok()) continue;
    sink = std::move(restored.value());
    snapshot_seq = it->first;
    dedup = ReadSessionFooters(*reader, &counters, &duplicates_rejected);
    break;
  }
  if (sink == nullptr) {
    auto fresh = parsed->MakeSink();
    if (!fresh.ok()) return fresh.status();
    sink = std::move(fresh.value());
    snapshot_seq = 0;
  }
  // The spec is the authority on whether the guard exists: a snapshot
  // written before dedup (or with a lost footer) restores an empty filter
  // that the WAL-tail replay below re-teaches; a stray footer on a
  // dedup=off session is ignored.
  if (!parsed->dedup) {
    dedup = nullptr;
    duplicates_rejected = 0;
  } else if (dedup == nullptr) {
    dedup = std::make_unique<DedupFilter>();
  }

  auto wal = WriteAheadLog::Open(SessionWalDir(dir), options.wal);
  if (!wal.ok()) return wal.status();
  // The WAL tail past the snapshot was counted into kept_total before the
  // crash/spill but is not in the footer; replaying reports its mutations
  // so the cumulative count comes back exact. The same pass rebuilds the
  // dedup filter's tail membership.
  int64_t replay_mutations = 0;
  auto replayed =
      wal->Replay(snapshot_seq, *sink, &replay_mutations, dedup.get());
  if (!replayed.ok()) return replayed.status();
  counters.restores += 1;
  counters.replayed_records += *replayed;
  counters.kept_total += replay_mutations;
  RestoresCounter().Inc();
  RestoreHist().RecordWithContext(
      static_cast<uint64_t>(restore_timer.ElapsedNanos()), dir,
      sink->StateVersion());

  DurableSession session(std::move(dir), std::move(spec), options);
  session.sink_ = std::move(sink);
  // Re-apply the server-level query parallelism after every restore: the
  // snapshot carries the spec-configured value, and the override is a
  // deployment knob, not stream state (bit-identity makes this safe).
  if (options.solve_threads != 0) {
    session.sink_->SetSolveThreads(options.solve_threads);
  }
  session.wal_ = std::make_unique<WriteAheadLog>(std::move(wal.value()));
  session.dim_ = parsed->dim;
  session.snapshot_seq_ = snapshot_seq;
  session.counters_ = counters;
  session.dedup_ = std::move(dedup);
  session.duplicates_rejected_ = duplicates_rejected;
  return session;
}

Status DurableSession::CheckDim(std::span<const StreamPoint> batch) const {
  for (const StreamPoint& point : batch) {
    if (point.coords.size() != dim_) {
      return Status::InvalidArgument(
          "point dimension " + std::to_string(point.coords.size()) +
          " does not match session dim " + std::to_string(dim_));
    }
  }
  return Status::Ok();
}

Status DurableSession::Observe(const StreamPoint& point) {
  auto outcome = Ingest({&point, 1}, /*as_batch=*/false);
  return outcome.ok() ? Status::Ok() : outcome.status();
}

Status DurableSession::ObserveBatch(std::span<const StreamPoint> batch) {
  auto outcome = Ingest(batch, /*as_batch=*/true);
  return outcome.ok() ? Status::Ok() : outcome.status();
}

Result<IngestOutcome> DurableSession::Ingest(
    std::span<const StreamPoint> batch, bool as_batch) {
  if (!broken_.ok()) return broken_;
  if (Status s = CheckDim(batch); !s.ok()) return s;

  IngestOutcome outcome;
  // Probe the duplicate guard BEFORE the WAL append: an already-seen id is
  // an idempotent no-op — it must leave no WAL record, no state-version
  // bump, and never reach the distance-scan admission path. Fresh ids are
  // committed to the filter here, slightly ahead of their WAL append; if
  // that append then fails, the session is poisoned and the reopen
  // rebuilds the filter from disk, so the filter can never durably claim
  // an id the log does not hold.
  std::vector<StreamPoint> fresh_storage;
  std::span<const StreamPoint> fresh = batch;
  if (dedup_ != nullptr) {
    fresh_storage.reserve(batch.size());
    const uint64_t grows_before = dedup_->Grows();
    for (const StreamPoint& point : batch) {
      bool is_new;
      if ((probe_sample_++ & 63) == 0) {
        Timer probe_timer;
        is_new = dedup_->InsertIfAbsent(point.id);
        DedupProbeHist().Record(
            static_cast<uint64_t>(probe_timer.ElapsedNanos()));
      } else {
        is_new = dedup_->InsertIfAbsent(point.id);
      }
      if (is_new) {
        fresh_storage.push_back(point);
      } else {
        outcome.duplicates += 1;
      }
    }
    fresh = fresh_storage;
    duplicates_rejected_ += outcome.duplicates;
    DedupCheckedCounter().Add(batch.size());
    DedupRejectedCounter().Add(static_cast<uint64_t>(outcome.duplicates));
    DedupFilterGrowsCounter().Add(dedup_->Grows() - grows_before);
    // An all-duplicate call is a complete no-op: not even the batch
    // counters move, because no batch was applied.
    if (fresh.empty()) return outcome;
  }
  outcome.accepted = static_cast<int64_t>(fresh.size());

  // WAL first: a record applied to the sink but absent from the log could
  // never be recovered; the converse (logged, crash before apply) replays.
  if (!as_batch && fresh.size() == 1) {
    if (Status s = wal_->Append(fresh[0]); !s.ok()) {
      // The log may now be ahead of the sink; latch the failure so no
      // later ingest or snapshot can act on the diverged pair (see
      // header).
      broken_ = Status(s.code(),
                       "session poisoned by WAL failure, reopen to recover: " +
                           s.message());
      return broken_;
    }
    const bool mutated = sink_->Observe(fresh[0]);
    counters_.kept_total += mutated ? 1 : 0;
    ObservedCounter().Inc();
    if (mutated) KeptCounter().Inc();
  } else {
    if (Status s = wal_->AppendBatch(fresh); !s.ok()) {
      broken_ = Status(s.code(),
                       "session poisoned by WAL failure, reopen to recover: " +
                           s.message());
      return broken_;
    }
    const size_t mutations = sink_->ObserveBatch(fresh);
    counters_.kept_total += static_cast<int64_t>(mutations);
    counters_.ingest_batches += 1;
    ObservedCounter().Add(fresh.size());
    KeptCounter().Add(mutations);
    BatchSizeHist().Record(fresh.size());
  }
  if (Status s = MaybeAutoSnapshot(); !s.ok()) return s;
  return outcome;
}

Status DurableSession::MaybeAutoSnapshot() {
  if (options_.snapshot_every == 0) return Status::Ok();
  if (UnsnapshottedRecords() <
      static_cast<int64_t>(options_.snapshot_every)) {
    return Status::Ok();
  }
  return TakeSnapshot();
}

Status DurableSession::PublishReplicationState() {
  SnapshotWriter writer;
  writer.WriteString(kReplAdvertTag);
  writer.WriteI64(sink_->ObservedElements());
  writer.WriteU64(sink_->StateVersion());
  return writer.WriteFile(SessionReplAdvertPath(dir_));
}

Status DurableSession::Sync() {
  if (Status s = wal_->Sync(); !s.ok()) return s;
  // The advert is written only after the fsync, so a follower that reads
  // (seq, version) can rely on every record up to seq being fetchable.
  return PublishReplicationState();
}

Status DurableSession::TakeSnapshot() {
  if (!broken_.ok()) return broken_;
  // The log must be durable through this stream position first: the
  // snapshot claims "everything up to seq is covered", which is only true
  // if no acknowledged record can disappear behind it.
  if (Status s = Sync(); !s.ok()) return s;
  const int64_t seq = sink_->ObservedElements();
  if (seq == snapshot_seq_) return Status::Ok();  // up to date (or empty)

  Timer snap_timer;
  SnapshotWriter writer;
  writer.WriteString(kSessionTag);
  writer.WriteString(spec_);
  writer.WriteI64(seq);
  if (Status s = sink_->Snapshot(writer); !s.ok()) return s;
  // Stats footer: written after the sink state so `RestoreSessionSnapshot`
  // (and the replica bootstrap, which shares it) can stop at the sink and
  // ignore the tail. The footer counts this snapshot as taken — a restore
  // from it must see the count that was true once it existed.
  SessionIngestCounters footer = counters_;
  footer.snapshots_taken += 1;
  footer.snapshot_write_ms_total += snap_timer.ElapsedSeconds() * 1000.0;
  WriteStatsFooter(writer, footer);
  if (dedup_ != nullptr) {
    WriteDedupFooter(writer, duplicates_rejected_, *dedup_);
  }
  const size_t payload_bytes = writer.PayloadBytes();
  if (Status s = writer.WriteFile(SnapshotPath(seq)); !s.ok()) return s;
  snapshot_seq_ = seq;
  counters_.snapshots_taken += 1;
  counters_.snapshot_write_ms_total += snap_timer.ElapsedSeconds() * 1000.0;
  SnapshotBytesCounter().Add(payload_bytes);
  SnapshotWriteHist().RecordWithContext(
      static_cast<uint64_t>(snap_timer.ElapsedNanos()), dir_,
      sink_->StateVersion());

  // Prune snapshots beyond keep_snapshots first, then drop only the WAL
  // prefix below the OLDEST snapshot still retained: if the newest
  // snapshot later fails its checksum, Open's fallback replays forward
  // from an older one — which needs the log from that point on.
  auto oldest_retained = PruneSnapshots();
  if (!oldest_retained.ok()) return oldest_retained.status();
  return wal_->TruncateBefore(*oldest_retained + 1);
}

Result<int64_t> DurableSession::PruneSnapshots() {
  auto snapshots = ListSessionSnapshots(SessionSnapDir(dir_));
  if (snapshots.size() > options_.keep_snapshots) {
    const size_t excess = snapshots.size() - options_.keep_snapshots;
    for (size_t i = 0; i < excess; ++i) {
      std::error_code ec;
      std::filesystem::remove(snapshots[i].second, ec);
      if (ec) {
        return Status::IoError("cannot prune snapshot " + snapshots[i].second +
                               ": " + ec.message());
      }
    }
    snapshots.erase(snapshots.begin(),
                    snapshots.begin() + static_cast<ptrdiff_t>(excess));
  }
  return snapshots.empty() ? snapshot_seq_ : snapshots.front().first;
}

}  // namespace fdm
