#include "service/sink_spec.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "core/adaptive_streaming_dm.h"
#include "core/fairness.h"
#include "core/sink_snapshot.h"
#include "core/sfdm1.h"
#include "core/sfdm2.h"
#include "core/sharded_stream.h"
#include "core/sliding_window.h"
#include "core/streaming_dm.h"
#include "util/stringutil.h"

namespace fdm {

namespace {

Status Invalid(const std::string& what) {
  return Status::InvalidArgument("sink spec: " + what);
}

Result<int64_t> ParseInt(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    return Invalid("bad integer for " + key + ": '" + value + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    return Invalid("bad number for " + key + ": '" + value + "'");
  }
  return v;
}

}  // namespace

Result<SinkSpec> SinkSpec::Parse(std::string_view text) {
  SinkSpec spec;
  std::istringstream tokens{std::string(text)};
  std::string token;
  bool saw_algo = false;
  bool saw_dim = false;
  while (tokens >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Invalid("expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "algo") {
      spec.algo = value;
      saw_algo = true;
    } else if (key == "dim") {
      auto v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      if (*v < 1) return Invalid("dim must be >= 1");
      spec.dim = static_cast<size_t>(*v);
      saw_dim = true;
    } else if (key == "k") {
      auto v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      spec.k = static_cast<int>(*v);
    } else if (key == "quotas") {
      spec.quotas.clear();
      for (const std::string& part : Split(value, ',')) {
        auto v = ParseInt(key, part);
        if (!v.ok()) return v.status();
        spec.quotas.push_back(static_cast<int>(*v));
      }
    } else if (key == "metric") {
      auto kind = ParseMetricKind(value);
      if (!kind.ok()) return Invalid("unknown metric '" + value + "'");
      spec.metric = *kind;
    } else if (key == "eps") {
      auto v = ParseDouble(key, value);
      if (!v.ok()) return v.status();
      spec.epsilon = *v;
    } else if (key == "dmin") {
      auto v = ParseDouble(key, value);
      if (!v.ok()) return v.status();
      spec.d_min = *v;
    } else if (key == "dmax") {
      auto v = ParseDouble(key, value);
      if (!v.ok()) return v.status();
      spec.d_max = *v;
    } else if (key == "threads") {
      auto v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      spec.threads = static_cast<int>(*v);
    } else if (key == "solve_threads") {
      auto v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      if (*v < 0) return Invalid("solve_threads must be >= 0");
      spec.solve_threads = static_cast<int>(*v);
    } else if (key == "shards") {
      auto v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      if (*v < 1) return Invalid("shards must be >= 1");
      spec.shards = static_cast<size_t>(*v);
    } else if (key == "window") {
      auto v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      spec.window = *v;
    } else if (key == "checkpoints") {
      auto v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      spec.checkpoints = *v;
    } else if (key == "max_rungs") {
      auto v = ParseInt(key, value);
      if (!v.ok()) return v.status();
      if (*v < 1) return Invalid("max_rungs must be >= 1");
      spec.max_rungs = static_cast<size_t>(*v);
    } else if (key == "dedup") {
      if (value == "on") {
        spec.dedup = true;
      } else if (value == "off") {
        spec.dedup = false;
      } else {
        return Invalid("dedup must be on|off, got '" + value + "'");
      }
    } else {
      return Invalid("unknown key '" + key + "'");
    }
  }
  if (!saw_algo) return Invalid("missing required key 'algo'");
  if (!saw_dim) return Invalid("missing required key 'dim'");
  return spec;
}

std::string SinkSpec::ToString() const {
  std::ostringstream out;
  out << "algo=" << algo << " dim=" << dim;
  if (!quotas.empty()) {
    out << " quotas=";
    for (size_t i = 0; i < quotas.size(); ++i) {
      if (i > 0) out << ',';
      out << quotas[i];
    }
  } else if (k > 0) {
    out << " k=" << k;
  }
  out << " metric=" << MetricKindName(metric) << " eps=" << epsilon;
  if (algo != "adaptive") out << " dmin=" << d_min << " dmax=" << d_max;
  if (threads != 1) out << " threads=" << threads;
  if (solve_threads != 1) out << " solve_threads=" << solve_threads;
  if (algo == "sharded") out << " shards=" << shards;
  if (algo == "sliding_window") {
    out << " window=" << window << " checkpoints=" << checkpoints;
  }
  if (algo == "adaptive") out << " max_rungs=" << max_rungs;
  if (dedup) out << " dedup=on";
  return out.str();
}

Result<std::unique_ptr<StreamSink>> SinkSpec::MakeSink() const {
  StreamingOptions streaming;
  streaming.epsilon = epsilon;
  streaming.d_min = d_min;
  streaming.d_max = d_max;
  streaming.batch_threads = threads;
  streaming.solve_threads = solve_threads;

  if (algo == "streaming_dm") {
    if (k < 1) return Invalid("algo=streaming_dm requires k>=1");
    return WrapSink(StreamingDm::Create(k, dim, metric, streaming));
  }
  if (algo == "sfdm1" || algo == "sfdm2") {
    if (quotas.empty()) return Invalid("algo=" + algo + " requires quotas");
    FairnessConstraint constraint;
    constraint.quotas = quotas;
    if (algo == "sfdm1") {
      return WrapSink(Sfdm1::Create(constraint, dim, metric, streaming));
    }
    return WrapSink(Sfdm2::Create(constraint, dim, metric, streaming));
  }
  if (algo == "adaptive") {
    if (k < 1) return Invalid("algo=adaptive requires k>=1");
    return WrapSink(AdaptiveStreamingDm::Create(k, dim, metric, epsilon,
                                                max_rungs, solve_threads));
  }
  if (algo == "sharded") {
    if (k < 1) return Invalid("algo=sharded requires k>=1");
    ShardedStreamingOptions sharding;
    sharding.num_shards = shards;
    sharding.batch_threads = threads;
    sharding.solve_threads = solve_threads;
    return WrapSink(
        ShardedStreamingDm::Create(k, dim, metric, streaming, sharding));
  }
  if (algo == "sliding_window") {
    if (k < 1) return Invalid("algo=sliding_window requires k>=1");
    if (window < 1) return Invalid("algo=sliding_window requires window>=1");
    int64_t cp = checkpoints;
    if (cp < 1) cp = 1;
    if (cp > window) cp = window;
    const int kk = k;
    const size_t d = dim;
    const MetricKind m = metric;
    return WrapSink(SlidingWindow<StreamingDm>::Create(
        window, cp, [kk, d, m, streaming] {
          return StreamingDm::Create(kk, d, m, streaming);
        }));
  }
  return Invalid("unknown algo '" + algo + "'");
}

Result<std::unique_ptr<StreamSink>> MakeSinkFromSpec(std::string_view text) {
  auto spec = SinkSpec::Parse(text);
  if (!spec.ok()) return spec.status();
  return spec->MakeSink();
}

}  // namespace fdm
