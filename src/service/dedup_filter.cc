#include "service/dedup_filter.h"

#include <utility>

#include "util/binary_io.h"

namespace fdm {

namespace {

constexpr int64_t kEmptyId = -1;

/// SplitMix64 finalizer — one multiply-xor round is plenty for point ids
/// (often sequential), and it is the same mixer the util Rng seeds with.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

DedupFilter::DedupFilter() {
  slots_.assign(kInitialBuckets * kSlotsPerBucket, 0);
  bucket_mask_ = kInitialBuckets - 1;
  ids_.assign(kInitialBuckets * kSlotsPerBucket * 2, kEmptyId);
  id_mask_ = ids_.size() - 1;
}

DedupFilter::Probe DedupFilter::MakeProbe(int64_t id) const {
  const uint64_t h = Mix64(static_cast<uint64_t>(id));
  Probe probe;
  // Fingerprint from the high bits, bucket from the low bits — independent
  // views of the hash, so a bucket collision does not imply a fingerprint
  // collision. 0 is reserved for "empty slot".
  probe.fp = static_cast<uint16_t>(h >> 48);
  if (probe.fp == 0) probe.fp = 1;
  probe.bucket1 = static_cast<size_t>(h) & bucket_mask_;
  probe.bucket2 = AltBucket(probe.bucket1, probe.fp);
  return probe;
}

size_t DedupFilter::AltBucket(size_t bucket, uint16_t fp) const {
  // Partial-key cuckoo: the partner bucket is derivable from (bucket, fp)
  // alone, so kicks can move fingerprints without knowing the original id.
  return (bucket ^ static_cast<size_t>(Mix64(fp))) & bucket_mask_;
}

bool DedupFilter::FilterMaybeContains(const Probe& probe) const {
  const uint16_t* b1 = &slots_[probe.bucket1 * kSlotsPerBucket];
  const uint16_t* b2 = &slots_[probe.bucket2 * kSlotsPerBucket];
  for (size_t i = 0; i < kSlotsPerBucket; ++i) {
    if (b1[i] == probe.fp || b2[i] == probe.fp) return true;
  }
  return false;
}

bool DedupFilter::FilterInsert(uint16_t fp, size_t bucket1) {
  size_t bucket = bucket1;
  uint16_t carry = fp;
  for (int kick = 0; kick <= kMaxKicks; ++kick) {
    uint16_t* slots = &slots_[bucket * kSlotsPerBucket];
    for (size_t i = 0; i < kSlotsPerBucket; ++i) {
      if (slots[i] == 0) {
        slots[i] = carry;
        return true;
      }
    }
    const size_t alt = AltBucket(bucket, carry);
    uint16_t* alt_slots = &slots_[alt * kSlotsPerBucket];
    for (size_t i = 0; i < kSlotsPerBucket; ++i) {
      if (alt_slots[i] == 0) {
        alt_slots[i] = carry;
        return true;
      }
    }
    // Both buckets full: evict a deterministic pseudo-random victim from
    // the alt bucket and continue from its partner.
    kick_state_ = Mix64(kick_state_);
    const size_t victim = static_cast<size_t>(kick_state_) % kSlotsPerBucket;
    std::swap(carry, alt_slots[victim]);
    bucket = AltBucket(alt, carry);
  }
  return false;
}

void DedupFilter::GrowFilter() {
  // Rebuild from the exact set at double capacity. Load-triggered and
  // kick-failure-triggered growth both land here; retrying the rebuild at
  // ever-larger capacities always terminates (at 2x slots per id, a full
  // kick-walk failure becomes vanishingly unlikely and the loop doubles
  // again if it does happen).
  size_t buckets = (bucket_mask_ + 1) * 2;
  for (;;) {
    slots_.assign(buckets * kSlotsPerBucket, 0);
    bucket_mask_ = buckets - 1;
    grows_ += 1;
    bool ok = true;
    for (int64_t id : ids_) {
      if (id == kEmptyId) continue;
      const Probe probe = MakeProbe(id);
      if (!FilterInsert(probe.fp, probe.bucket1)) {
        ok = false;
        break;
      }
    }
    if (ok) return;
    buckets *= 2;
  }
}

bool DedupFilter::ExactContains(int64_t id) const {
  size_t slot = static_cast<size_t>(Mix64(static_cast<uint64_t>(id))) &
                id_mask_;
  while (ids_[slot] != kEmptyId) {
    if (ids_[slot] == id) return true;
    slot = (slot + 1) & id_mask_;
  }
  return false;
}

void DedupFilter::ExactInsert(int64_t id) {
  size_t slot = static_cast<size_t>(Mix64(static_cast<uint64_t>(id))) &
                id_mask_;
  while (ids_[slot] != kEmptyId) slot = (slot + 1) & id_mask_;
  ids_[slot] = id;
}

void DedupFilter::ExactGrowIfNeeded() {
  // Keep load under 50% so linear probing stays short.
  if ((size_ + 1) * 2 <= ids_.size()) return;
  std::vector<int64_t> old = std::move(ids_);
  ids_.assign(old.size() * 2, kEmptyId);
  id_mask_ = ids_.size() - 1;
  for (int64_t id : old) {
    if (id != kEmptyId) ExactInsert(id);
  }
}

bool DedupFilter::Contains(int64_t id) const {
  if (id < 0) return false;
  const Probe probe = MakeProbe(id);
  if (!FilterMaybeContains(probe)) return false;
  return ExactContains(id);
}

bool DedupFilter::InsertIfAbsent(int64_t id) {
  if (id < 0) return true;  // identity-less points bypass dedup
  const Probe probe = MakeProbe(id);
  if (FilterMaybeContains(probe)) {
    if (ExactContains(id)) return false;  // true duplicate
    false_positives_ += 1;  // fingerprint collision — admit the point
  }
  ExactGrowIfNeeded();
  ExactInsert(id);
  size_ += 1;
  // Grow before the table saturates: past ~94% occupancy (15/16 slots)
  // kick walks get long and failure-prone.
  const size_t capacity = slots_.size();
  if (size_ * 16 >= capacity * 15 ||
      !FilterInsert(probe.fp, probe.bucket1)) {
    GrowFilter();
  }
  return true;
}

size_t DedupFilter::MemoryBytes() const {
  return slots_.size() * sizeof(uint16_t) + ids_.size() * sizeof(int64_t);
}

void DedupFilter::Clear() {
  std::fill(slots_.begin(), slots_.end(), 0);
  std::fill(ids_.begin(), ids_.end(), kEmptyId);
  size_ = 0;
}

void DedupFilter::Serialize(SnapshotWriter& writer) const {
  // Only the ids and the cumulative counters persist; the fingerprint
  // table is rebuilt on load, which keeps the format independent of the
  // slot layout (and of kMaxKicks / growth-trigger tuning).
  writer.WriteU64(bucket_mask_ + 1);
  writer.WriteU64(grows_);
  writer.WriteU64(false_positives_);
  std::vector<int64_t> present;
  present.reserve(size_);
  for (int64_t id : ids_) {
    if (id != kEmptyId) present.push_back(id);
  }
  writer.WriteI64Span(present);
}

Result<DedupFilter> DedupFilter::Deserialize(SnapshotReader& reader) {
  const uint64_t buckets = reader.ReadU64();
  const uint64_t grows = reader.ReadU64();
  const uint64_t false_positives = reader.ReadU64();
  std::vector<int64_t> present = reader.ReadI64Vec();
  if (!reader.ok()) return reader.status();
  if (buckets < kInitialBuckets || (buckets & (buckets - 1)) != 0) {
    return Status::IoError("dedup filter snapshot: bad bucket count " +
                           std::to_string(buckets));
  }
  DedupFilter filter;
  // Restore at the serialized capacity up front so the rebuild does not
  // replay the whole growth ladder.
  filter.slots_.assign(buckets * kSlotsPerBucket, 0);
  filter.bucket_mask_ = buckets - 1;
  while (filter.ids_.size() < present.size() * 2) {
    filter.ids_.assign(filter.ids_.size() * 2, kEmptyId);
  }
  std::fill(filter.ids_.begin(), filter.ids_.end(), kEmptyId);
  filter.id_mask_ = filter.ids_.size() - 1;
  for (int64_t id : present) {
    if (id < 0 || filter.ExactContains(id)) {
      return Status::IoError("dedup filter snapshot: invalid id list");
    }
    filter.ExactInsert(id);
    filter.size_ += 1;
    const Probe probe = filter.MakeProbe(id);
    if (!filter.FilterInsert(probe.fp, probe.bucket1)) filter.GrowFilter();
  }
  filter.grows_ = grows;
  filter.false_positives_ = false_positives;
  return filter;
}

}  // namespace fdm
