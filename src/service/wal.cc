#include "service/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/binary_io.h"
#include "util/check.h"

namespace fdm {

namespace {

constexpr char kSegmentMagic[8] = {'F', 'D', 'M', 'W', 'A', 'L', '0', '1'};
constexpr size_t kRecordHeaderBytes = sizeof(uint32_t);
constexpr size_t kRecordChecksumBytes = sizeof(uint64_t);
/// A record payload beyond this is corruption, not data (it would imply a
/// ~8M-dimensional point).
constexpr uint32_t kMaxPayloadBytes = 64u << 20;
/// Flush the append buffer to the fd once it grows past this.
constexpr size_t kFlushThresholdBytes = 256u << 10;

std::string SegmentName(int64_t first_seq) {
  char name[40];
  std::snprintf(name, sizeof(name), "wal-%020lld.log",
                static_cast<long long>(first_seq));
  return name;
}

template <typename T>
void AppendScalar(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T ReadScalarAt(const std::string& bytes, size_t offset) {
  T v{};
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

/// Outcome of scanning one segment file.
struct SegmentScan {
  Status status;             // non-OK: unreadable / not a WAL segment
  size_t valid_bytes = 0;    // offset just past the last intact record
  bool torn_tail = false;    // trailing bytes exist past `valid_bytes`
  int64_t first_seq = 0;     // of the records actually present (0 if none)
  int64_t last_seq = 0;      // 0 if the segment holds no intact record
};

/// Walks the records of a loaded segment, invoking `on_record(payload
/// bytes, payload size)` for each intact one. Stops at the first torn or
/// corrupt record and reports where.
template <typename OnRecord>
SegmentScan ScanSegment(const std::string& bytes, OnRecord&& on_record) {
  SegmentScan scan;
  if (bytes.size() < sizeof(kSegmentMagic) ||
      std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    scan.status = Status::IoError("not a WAL segment (bad magic)");
    return scan;
  }
  size_t offset = sizeof(kSegmentMagic);
  scan.valid_bytes = offset;
  while (offset + kRecordHeaderBytes <= bytes.size()) {
    const uint32_t len = ReadScalarAt<uint32_t>(bytes, offset);
    if (len > kMaxPayloadBytes ||
        offset + kRecordHeaderBytes + len + kRecordChecksumBytes >
            bytes.size()) {
      break;  // torn or corrupt tail
    }
    const char* payload = bytes.data() + offset + kRecordHeaderBytes;
    const uint64_t stored = ReadScalarAt<uint64_t>(
        bytes, offset + kRecordHeaderBytes + len);
    if (stored != Fnv1a64(payload, len)) break;
    const int64_t seq = on_record(payload, len);
    if (seq < 0) {
      scan.status = Status::IoError("malformed WAL record payload");
      return scan;
    }
    if (scan.first_seq == 0) scan.first_seq = seq;
    scan.last_seq = seq;
    offset += kRecordHeaderBytes + len + kRecordChecksumBytes;
    scan.valid_bytes = offset;
  }
  scan.torn_tail = scan.valid_bytes < bytes.size();
  return scan;
}

}  // namespace

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : dir_(std::move(other.dir_)),
      options_(other.options_),
      segment_first_seqs_(std::move(other.segment_first_seqs_)),
      fd_(other.fd_),
      active_segment_bytes_(other.active_segment_bytes_),
      buffer_(std::move(other.buffer_)),
      last_seq_(other.last_seq_),
      unsynced_records_(other.unsynced_records_) {
  other.fd_ = -1;
  other.unsynced_records_ = 0;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    CloseFd();
    dir_ = std::move(other.dir_);
    options_ = other.options_;
    segment_first_seqs_ = std::move(other.segment_first_seqs_);
    fd_ = other.fd_;
    active_segment_bytes_ = other.active_segment_bytes_;
    buffer_ = std::move(other.buffer_);
    last_seq_ = other.last_seq_;
    unsynced_records_ = other.unsynced_records_;
    other.fd_ = -1;
    other.unsynced_records_ = 0;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    (void)Sync();  // best-effort durability on clean shutdown
    CloseFd();
  }
}

void WriteAheadLog::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WriteAheadLog> WriteAheadLog::Open(std::string dir,
                                          WalOptions options) {
  if (options.segment_bytes < 1u << 10) options.segment_bytes = 1u << 10;
  if (options.sync_every == 0) options.sync_every = 1;
  if (options.replay_batch == 0) options.replay_batch = 1;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create WAL dir " + dir + ": " +
                           ec.message());
  }
  WriteAheadLog wal(std::move(dir), options);

  // Discover existing segments.
  for (const auto& entry : std::filesystem::directory_iterator(wal.dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != SegmentName(0).size() || name.rfind("wal-", 0) != 0 ||
        name.substr(name.size() - 4) != ".log") {
      continue;
    }
    char* end = nullptr;
    const long long first = std::strtoll(name.c_str() + 4, &end, 10);
    if (end == nullptr || std::strcmp(end, ".log") != 0 || first < 1) continue;
    wal.segment_first_seqs_.push_back(first);
  }
  if (ec) {
    return Status::IoError("cannot list WAL dir " + wal.dir_ + ": " +
                           ec.message());
  }
  std::sort(wal.segment_first_seqs_.begin(), wal.segment_first_seqs_.end());

  if (wal.segment_first_seqs_.empty()) {
    wal.last_seq_ = 0;
    if (Status s = wal.OpenSegment(1); !s.ok()) return s;
    return wal;
  }

  // Recover last_seq from the newest segment and drop a torn tail so new
  // appends land on a record boundary.
  const int64_t newest_first = wal.segment_first_seqs_.back();
  const std::string newest_path =
      wal.dir_ + "/" + SegmentName(newest_first);
  auto loaded = ReadFileToString(newest_path);
  if (!loaded.ok()) return loaded.status();
  const std::string& bytes = loaded.value();
  if (bytes.size() < sizeof(kSegmentMagic)) {
    // A crash can leave a freshly rotated segment empty (its magic was
    // buffered but never flushed). Re-initialize it in place.
    const int fd = ::open(newest_path.c_str(), O_WRONLY | O_TRUNC);
    if (fd < 0) {
      return Status::IoError("cannot reopen empty WAL segment: " +
                             newest_path + ": " + std::strerror(errno));
    }
    wal.fd_ = fd;
    wal.buffer_.assign(kSegmentMagic, sizeof(kSegmentMagic));
    wal.active_segment_bytes_ = 0;
    wal.last_seq_ = newest_first - 1;
    return wal;
  }
  const SegmentScan scan = ScanSegment(bytes, [](const char* payload,
                                                 uint32_t len) -> int64_t {
    if (len < sizeof(uint64_t)) return -1;
    uint64_t seq = 0;
    std::memcpy(&seq, payload, sizeof(seq));
    return static_cast<int64_t>(seq);
  });
  if (!scan.status.ok()) {
    return Status::IoError(scan.status.message() + ": " + newest_path);
  }
  if (scan.torn_tail) {
    if (::truncate(newest_path.c_str(),
                   static_cast<off_t>(scan.valid_bytes)) != 0) {
      return Status::IoError("cannot truncate torn WAL tail: " + newest_path +
                             ": " + std::strerror(errno));
    }
  }
  wal.last_seq_ = scan.last_seq != 0 ? scan.last_seq : newest_first - 1;

  const int fd = ::open(newest_path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status::IoError("cannot open WAL segment for append: " +
                           newest_path + ": " + std::strerror(errno));
  }
  wal.fd_ = fd;
  wal.active_segment_bytes_ = scan.valid_bytes;
  return wal;
}

Status WriteAheadLog::OpenSegment(int64_t first_seq) {
  if (Status s = FlushBuffer(); !s.ok()) return s;
  CloseFd();
  const std::string path = dir_ + "/" + SegmentName(first_seq);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create WAL segment: " + path + ": " +
                           std::strerror(errno));
  }
  fd_ = fd;
  buffer_.assign(kSegmentMagic, sizeof(kSegmentMagic));
  active_segment_bytes_ = 0;
  segment_first_seqs_.push_back(first_seq);
  return Status::Ok();
}

Status WriteAheadLog::FlushBuffer() {
  if (buffer_.empty()) return Status::Ok();
  FDM_CHECK(fd_ >= 0);
  size_t written = 0;
  while (written < buffer_.size()) {
    const ssize_t n =
        ::write(fd_, buffer_.data() + written, buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("WAL write failed: " + dir_ + ": " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  active_segment_bytes_ += buffer_.size();
  buffer_.clear();
  return Status::Ok();
}

Status WriteAheadLog::AppendLocked(const StreamPoint& point) {
  const int64_t seq = last_seq_ + 1;
  const uint32_t dim = static_cast<uint32_t>(point.coords.size());
  const uint32_t payload_len =
      sizeof(uint64_t) + sizeof(int64_t) + sizeof(int32_t) + sizeof(uint32_t) +
      dim * sizeof(double);

  const size_t payload_begin = buffer_.size() + kRecordHeaderBytes;
  AppendScalar<uint32_t>(buffer_, payload_len);
  AppendScalar<uint64_t>(buffer_, static_cast<uint64_t>(seq));
  AppendScalar<int64_t>(buffer_, point.id);
  AppendScalar<int32_t>(buffer_, point.group);
  AppendScalar<uint32_t>(buffer_, dim);
  buffer_.append(reinterpret_cast<const char*>(point.coords.data()),
                 dim * sizeof(double));
  AppendScalar<uint64_t>(
      buffer_, Fnv1a64(buffer_.data() + payload_begin, payload_len));

  last_seq_ = seq;
  ++unsynced_records_;

  if (buffer_.size() >= kFlushThresholdBytes) {
    if (Status s = FlushBuffer(); !s.ok()) return s;
  }
  if (active_segment_bytes_ + buffer_.size() >= options_.segment_bytes) {
    // Seal the segment durably before rotating so `TruncateBefore` after a
    // future snapshot never deletes the only copy of unsynced records.
    if (Status s = Sync(); !s.ok()) return s;
    if (Status s = OpenSegment(last_seq_ + 1); !s.ok()) return s;
  }
  return Status::Ok();
}

Status WriteAheadLog::Append(const StreamPoint& point) {
  if (Status s = AppendLocked(point); !s.ok()) return s;
  if (unsynced_records_ >= options_.sync_every) return Sync();
  return Status::Ok();
}

Status WriteAheadLog::AppendBatch(std::span<const StreamPoint> batch) {
  for (const StreamPoint& point : batch) {
    if (Status s = AppendLocked(point); !s.ok()) return s;
  }
  if (unsynced_records_ >= options_.sync_every) return Sync();
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  if (Status s = FlushBuffer(); !s.ok()) return s;
  if (unsynced_records_ == 0) return Status::Ok();
  FDM_CHECK(fd_ >= 0);
  if (::fsync(fd_) != 0) {
    return Status::IoError("WAL fsync failed: " + dir_ + ": " +
                           std::strerror(errno));
  }
  unsynced_records_ = 0;
  return Status::Ok();
}

std::vector<std::string> WriteAheadLog::SegmentPaths() const {
  std::vector<std::string> paths;
  paths.reserve(segment_first_seqs_.size());
  for (const int64_t first : segment_first_seqs_) {
    paths.push_back(dir_ + "/" + SegmentName(first));
  }
  return paths;
}

Result<int64_t> WriteAheadLog::Replay(int64_t after_seq,
                                      StreamSink& sink) const {
  FDM_CHECK_MSG(buffer_.empty() || buffer_.size() == sizeof(kSegmentMagic),
                "Sync() the WAL before Replay()");
  int64_t replayed = 0;
  int64_t prev_seq = after_seq;

  // Batch scratch: coordinates pool + point views into it, flushed through
  // ObserveBatch so rung-parallel sinks replay at batched-ingestion speed.
  std::vector<double> coords_pool;
  std::vector<int64_t> ids;
  std::vector<int32_t> groups;
  size_t batch_dim = 0;

  auto flush_batch = [&]() {
    if (ids.empty()) return;
    std::vector<StreamPoint> points;
    points.reserve(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      points.push_back(StreamPoint{
          ids[i], groups[i],
          std::span<const double>(coords_pool.data() + i * batch_dim,
                                  batch_dim)});
    }
    sink.ObserveBatch(points);
    coords_pool.clear();
    ids.clear();
    groups.clear();
  };

  for (size_t s = 0; s < segment_first_seqs_.size(); ++s) {
    // A whole segment is skippable when the next segment starts at or
    // before the replay point — every record in it has a smaller seq.
    if (s + 1 < segment_first_seqs_.size() &&
        segment_first_seqs_[s + 1] <= after_seq + 1) {
      continue;
    }
    const std::string path = dir_ + "/" + SegmentName(segment_first_seqs_[s]);
    auto loaded = ReadFileToString(path);
    if (!loaded.ok()) return loaded.status();
    const std::string& bytes = loaded.value();
    if (bytes.size() < sizeof(kSegmentMagic)) {
      // A freshly created/rotated active segment whose magic was never
      // flushed (crash before the first flush, or the magic still sits in
      // this object's buffer). Empty = nothing to replay; only legal for
      // the newest segment.
      if (s + 1 == segment_first_seqs_.size()) continue;
      return Status::IoError("empty WAL segment mid-log: " + path);
    }

    Status record_error;
    const SegmentScan scan = ScanSegment(
        bytes, [&](const char* payload, uint32_t len) -> int64_t {
          constexpr uint32_t kFixed = sizeof(uint64_t) + sizeof(int64_t) +
                                      sizeof(int32_t) + sizeof(uint32_t);
          if (len < kFixed) return -1;
          size_t at = 0;
          uint64_t seq_u = 0;
          int64_t id = 0;
          int32_t group = 0;
          uint32_t dim = 0;
          std::memcpy(&seq_u, payload + at, sizeof(seq_u)), at += sizeof(seq_u);
          std::memcpy(&id, payload + at, sizeof(id)), at += sizeof(id);
          std::memcpy(&group, payload + at, sizeof(group)), at += sizeof(group);
          std::memcpy(&dim, payload + at, sizeof(dim)), at += sizeof(dim);
          if (len != kFixed + dim * sizeof(double)) return -1;
          const int64_t seq = static_cast<int64_t>(seq_u);
          if (seq <= after_seq) return seq;  // before the snapshot: skip
          if (seq != prev_seq + 1) {
            record_error = Status::IoError(
                "WAL sequence gap: expected " + std::to_string(prev_seq + 1) +
                ", found " + std::to_string(seq) + " in " + path);
            return -1;
          }
          if (batch_dim == 0) {
            batch_dim = dim;
            coords_pool.reserve(options_.replay_batch * batch_dim);
          } else if (dim != batch_dim) {
            record_error = Status::IoError(
                "WAL record dimension changed mid-log in " + path);
            return -1;
          }
          coords_pool.insert(
              coords_pool.end(), reinterpret_cast<const double*>(payload + at),
              reinterpret_cast<const double*>(payload + at) + dim);
          ids.push_back(id);
          groups.push_back(group);
          prev_seq = seq;
          ++replayed;
          if (ids.size() >= options_.replay_batch) flush_batch();
          return seq;
        });
    if (!record_error.ok()) return record_error;
    if (!scan.status.ok()) {
      return Status::IoError(scan.status.message() + ": " + path);
    }
    if (scan.torn_tail && s + 1 != segment_first_seqs_.size()) {
      return Status::IoError("corrupt record mid-WAL (not the newest "
                             "segment): " + path);
    }
  }
  flush_batch();
  return replayed;
}

Status WriteAheadLog::TruncateBefore(int64_t before_seq) {
  size_t removable = 0;
  while (removable + 1 < segment_first_seqs_.size() &&
         segment_first_seqs_[removable + 1] <= before_seq) {
    ++removable;
  }
  for (size_t i = 0; i < removable; ++i) {
    const std::string path = dir_ + "/" + SegmentName(segment_first_seqs_[i]);
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) {
      return Status::IoError("cannot remove WAL segment " + path + ": " +
                             ec.message());
    }
  }
  segment_first_seqs_.erase(segment_first_seqs_.begin(),
                            segment_first_seqs_.begin() + removable);
  return Status::Ok();
}

}  // namespace fdm
