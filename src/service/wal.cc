#include "service/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "util/binary_io.h"
#include "util/check.h"
#include "util/timer.h"

namespace fdm {

namespace {

// Durability-plane metrics. Cached references: the registry getters take a
// lock, so resolve each metric once and reuse the (never-dangling)
// reference. Single-record `Append` gets counters only — a clock read per
// record would be measurable on the per-element ingest path; the batched
// paths carry the latency histograms.
obs::Counter& WalRecordsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_wal_append_records_total", "records appended to the WAL");
  return c;
}
obs::Counter& WalBytesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_wal_append_bytes_total", "framed record bytes appended to the WAL");
  return c;
}
obs::Histogram& WalAppendBatchHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_wal_append_batch_ns", "latency of WAL AppendBatch calls",
      /*slow_threshold_ns=*/50'000'000);
  return h;
}
obs::Histogram& WalFsyncHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_wal_fsync_ns", "latency of WAL fsyncs (flush included)",
      /*slow_threshold_ns=*/250'000'000);
  return h;
}
obs::Counter& WalRotateCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_wal_rotate_total", "WAL segment files opened (first one included)");
  return c;
}
obs::Histogram& WalReplayHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "fdm_wal_replay_ns", "latency of whole WAL replays",
      /*slow_threshold_ns=*/2'000'000'000);
  return h;
}
obs::Counter& WalReplayRecordsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "fdm_wal_replay_records_total", "records replayed from the WAL");
  return c;
}

constexpr char kSegmentMagic[8] = {'F', 'D', 'M', 'W', 'A', 'L', '0', '1'};
constexpr size_t kRecordHeaderBytes = sizeof(uint32_t);
constexpr size_t kRecordChecksumBytes = sizeof(uint64_t);
/// A record payload beyond this is corruption, not data (it would imply a
/// ~8M-dimensional point).
constexpr uint32_t kMaxPayloadBytes = 64u << 20;
/// Flush the append buffer to the fd once it grows past this.
constexpr size_t kFlushThresholdBytes = 256u << 10;

std::string SegmentName(int64_t first_seq) {
  return WalSegmentFileName(first_seq);
}

/// A mid-log zero-length segment is skippable noise, but it sits on disk
/// until pruning passes it and replication re-enumerates segments on every
/// poll — warn once per path, not once per scan. (The *newest* segment is
/// legitimately 0 bytes right after a rotation, while its magic still sits
/// in the append buffer — callers must not report that at all.)
void WarnZeroLengthSegmentOnce(const std::string& path) {
  static std::mutex mu;
  static std::set<std::string>& warned = *new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  if (warned.size() > 256) warned.clear();  // bound a long-lived process
  if (!warned.insert(path).second) return;
  std::fprintf(stderr,
               "fdm wal: skipping zero-length segment %s (crash artifact)\n",
               path.c_str());
}

/// Parses a `wal-<first_seq>.log` file name; returns -1 when `name` is not
/// a segment file.
int64_t ParseSegmentName(const std::string& name) {
  if (name.size() != SegmentName(0).size() || name.rfind("wal-", 0) != 0 ||
      name.substr(name.size() - 4) != ".log") {
    return -1;
  }
  char* end = nullptr;
  const long long first = std::strtoll(name.c_str() + 4, &end, 10);
  if (end == nullptr || std::strcmp(end, ".log") != 0 || first < 1) return -1;
  return first;
}

template <typename T>
void AppendScalar(std::string& out, T v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T ReadScalarAt(std::string_view bytes, size_t offset) {
  T v{};
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}

}  // namespace

std::string WalSegmentFileName(int64_t first_seq) {
  char name[40];
  std::snprintf(name, sizeof(name), "wal-%020lld.log",
                static_cast<long long>(first_seq));
  return name;
}

WalSegmentCursor::WalSegmentCursor(std::string_view bytes) : bytes_(bytes) {
  if (bytes_.size() < sizeof(kSegmentMagic) ||
      std::memcmp(bytes_.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    status_ = Status::IoError("not a WAL segment (bad magic)");
    offset_ = bytes_.size();  // nothing is decodable
    valid_bytes_ = 0;
    return;
  }
  offset_ = sizeof(kSegmentMagic);
  valid_bytes_ = offset_;
}

bool WalSegmentCursor::Next(WalRecordView& record) {
  if (!status_.ok()) return false;
  if (offset_ + kRecordHeaderBytes > bytes_.size()) return false;
  const uint32_t len = ReadScalarAt<uint32_t>(bytes_, offset_);
  if (len > kMaxPayloadBytes ||
      offset_ + kRecordHeaderBytes + len + kRecordChecksumBytes >
          bytes_.size()) {
    return false;  // torn or corrupt tail
  }
  const char* payload = bytes_.data() + offset_ + kRecordHeaderBytes;
  const uint64_t stored =
      ReadScalarAt<uint64_t>(bytes_, offset_ + kRecordHeaderBytes + len);
  if (stored != Fnv1a64(payload, len)) return false;  // torn mid-payload

  // The checksum held, so a malformed payload is corruption, not a crash.
  constexpr uint32_t kFixed = sizeof(uint64_t) + sizeof(int64_t) +
                              sizeof(int32_t) + sizeof(uint32_t);
  if (len < kFixed) {
    status_ = Status::IoError("malformed WAL record payload");
    return false;
  }
  size_t at = 0;
  uint64_t seq = 0;
  std::memcpy(&seq, payload + at, sizeof(seq)), at += sizeof(seq);
  std::memcpy(&record.id, payload + at, sizeof(record.id)),
      at += sizeof(record.id);
  std::memcpy(&record.group, payload + at, sizeof(record.group)),
      at += sizeof(record.group);
  uint32_t dim = 0;
  std::memcpy(&dim, payload + at, sizeof(dim)), at += sizeof(dim);
  if (len != kFixed + dim * sizeof(double)) {
    status_ = Status::IoError("malformed WAL record payload");
    return false;
  }
  record.seq = static_cast<int64_t>(seq);
  // memcpy into aligned scratch — the payload sits at an arbitrary byte
  // offset, so reading doubles in place would be a misaligned access.
  coords_.resize(dim);
  std::memcpy(coords_.data(), payload + at, dim * sizeof(double));
  record.coords = coords_;

  offset_ += kRecordHeaderBytes + len + kRecordChecksumBytes;
  valid_bytes_ = offset_;
  return true;
}

Result<std::vector<WalSegmentInfo>> WriteAheadLog::ListSegments(
    const std::string& dir) {
  std::vector<WalSegmentInfo> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const int64_t first = ParseSegmentName(name);
    if (first < 1) continue;
    WalSegmentInfo info;
    info.first_seq = first;
    info.path = entry.path().string();
    std::error_code size_ec;
    info.bytes = entry.file_size(size_ec);
    if (size_ec) info.bytes = 0;
    segments.push_back(std::move(info));
  }
  if (ec) {
    return Status::IoError("cannot list WAL dir " + dir + ": " + ec.message());
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.first_seq < b.first_seq;
            });
  // Zero-length files hold no records and are dropped. Only a *mid-log*
  // one is a crash artifact worth a warning; the newest is legitimately
  // empty right after a rotation (magic still in the append buffer).
  if (!segments.empty() && segments.back().bytes == 0) segments.pop_back();
  std::erase_if(segments, [](const WalSegmentInfo& seg) {
    if (seg.bytes != 0) return false;
    WarnZeroLengthSegmentOnce(seg.path);
    return true;
  });
  return segments;
}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : dir_(std::move(other.dir_)),
      options_(other.options_),
      segment_first_seqs_(std::move(other.segment_first_seqs_)),
      fd_(other.fd_),
      active_segment_bytes_(other.active_segment_bytes_),
      buffer_(std::move(other.buffer_)),
      last_seq_(other.last_seq_),
      unsynced_records_(other.unsynced_records_) {
  other.fd_ = -1;
  other.unsynced_records_ = 0;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    CloseFd();
    dir_ = std::move(other.dir_);
    options_ = other.options_;
    segment_first_seqs_ = std::move(other.segment_first_seqs_);
    fd_ = other.fd_;
    active_segment_bytes_ = other.active_segment_bytes_;
    buffer_ = std::move(other.buffer_);
    last_seq_ = other.last_seq_;
    unsynced_records_ = other.unsynced_records_;
    other.fd_ = -1;
    other.unsynced_records_ = 0;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    (void)Sync();  // best-effort durability on clean shutdown
    CloseFd();
  }
}

void WriteAheadLog::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WriteAheadLog> WriteAheadLog::Open(std::string dir,
                                          WalOptions options) {
  if (options.segment_bytes < 1u << 10) options.segment_bytes = 1u << 10;
  if (options.sync_every == 0) options.sync_every = 1;
  if (options.replay_batch == 0) options.replay_batch = 1;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create WAL dir " + dir + ": " +
                           ec.message());
  }
  WriteAheadLog wal(std::move(dir), options);

  // Discover existing segments.
  for (const auto& entry : std::filesystem::directory_iterator(wal.dir_, ec)) {
    const int64_t first = ParseSegmentName(entry.path().filename().string());
    if (first < 1) continue;
    wal.segment_first_seqs_.push_back(first);
  }
  if (ec) {
    return Status::IoError("cannot list WAL dir " + wal.dir_ + ": " +
                           ec.message());
  }
  std::sort(wal.segment_first_seqs_.begin(), wal.segment_first_seqs_.end());

  if (wal.segment_first_seqs_.empty()) {
    wal.last_seq_ = 0;
    if (Status s = wal.OpenSegment(1); !s.ok()) return s;
    return wal;
  }

  // Recover last_seq from the newest segment and drop a torn tail so new
  // appends land on a record boundary.
  const int64_t newest_first = wal.segment_first_seqs_.back();
  const std::string newest_path =
      wal.dir_ + "/" + SegmentName(newest_first);
  auto loaded = ReadFileToString(newest_path);
  if (!loaded.ok()) return loaded.status();
  const std::string& bytes = loaded.value();
  if (bytes.size() < sizeof(kSegmentMagic)) {
    // A crash can leave a freshly rotated segment empty (its magic was
    // buffered but never flushed). Re-initialize it in place.
    const int fd = ::open(newest_path.c_str(), O_WRONLY | O_TRUNC);
    if (fd < 0) {
      return Status::IoError("cannot reopen empty WAL segment: " +
                             newest_path + ": " + std::strerror(errno));
    }
    wal.fd_ = fd;
    wal.buffer_.assign(kSegmentMagic, sizeof(kSegmentMagic));
    wal.active_segment_bytes_ = 0;
    wal.last_seq_ = newest_first - 1;
    return wal;
  }
  WalSegmentCursor cursor(bytes);
  WalRecordView record;
  int64_t newest_last_seq = 0;
  while (cursor.Next(record)) newest_last_seq = record.seq;
  if (!cursor.status().ok()) {
    return Status::IoError(cursor.status().message() + ": " + newest_path);
  }
  if (cursor.torn_tail()) {
    if (::truncate(newest_path.c_str(),
                   static_cast<off_t>(cursor.valid_bytes())) != 0) {
      return Status::IoError("cannot truncate torn WAL tail: " + newest_path +
                             ": " + std::strerror(errno));
    }
  }
  wal.last_seq_ = newest_last_seq != 0 ? newest_last_seq : newest_first - 1;

  const int fd = ::open(newest_path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status::IoError("cannot open WAL segment for append: " +
                           newest_path + ": " + std::strerror(errno));
  }
  wal.fd_ = fd;
  wal.active_segment_bytes_ = cursor.valid_bytes();
  return wal;
}

Status WriteAheadLog::OpenSegment(int64_t first_seq) {
  if (Status s = FlushBuffer(); !s.ok()) return s;
  CloseFd();
  const std::string path = dir_ + "/" + SegmentName(first_seq);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create WAL segment: " + path + ": " +
                           std::strerror(errno));
  }
  fd_ = fd;
  buffer_.assign(kSegmentMagic, sizeof(kSegmentMagic));
  active_segment_bytes_ = 0;
  segment_first_seqs_.push_back(first_seq);
  WalRotateCounter().Inc();
  return Status::Ok();
}

Status WriteAheadLog::FlushBuffer() {
  if (buffer_.empty()) return Status::Ok();
  FDM_CHECK(fd_ >= 0);
  size_t written = 0;
  while (written < buffer_.size()) {
    const ssize_t n =
        ::write(fd_, buffer_.data() + written, buffer_.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("WAL write failed: " + dir_ + ": " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  active_segment_bytes_ += buffer_.size();
  buffer_.clear();
  return Status::Ok();
}

Status WriteAheadLog::AppendLocked(const StreamPoint& point) {
  const int64_t seq = last_seq_ + 1;
  const uint32_t dim = static_cast<uint32_t>(point.coords.size());
  const uint32_t payload_len =
      sizeof(uint64_t) + sizeof(int64_t) + sizeof(int32_t) + sizeof(uint32_t) +
      dim * sizeof(double);

  const size_t payload_begin = buffer_.size() + kRecordHeaderBytes;
  AppendScalar<uint32_t>(buffer_, payload_len);
  AppendScalar<uint64_t>(buffer_, static_cast<uint64_t>(seq));
  AppendScalar<int64_t>(buffer_, point.id);
  AppendScalar<int32_t>(buffer_, point.group);
  AppendScalar<uint32_t>(buffer_, dim);
  buffer_.append(reinterpret_cast<const char*>(point.coords.data()),
                 dim * sizeof(double));
  AppendScalar<uint64_t>(
      buffer_, Fnv1a64(buffer_.data() + payload_begin, payload_len));

  last_seq_ = seq;
  ++unsynced_records_;
  WalRecordsCounter().Inc();
  WalBytesCounter().Add(kRecordHeaderBytes + payload_len +
                        kRecordChecksumBytes);

  if (buffer_.size() >= kFlushThresholdBytes) {
    if (Status s = FlushBuffer(); !s.ok()) return s;
  }
  if (active_segment_bytes_ + buffer_.size() >= options_.segment_bytes) {
    // Seal the segment durably before rotating so `TruncateBefore` after a
    // future snapshot never deletes the only copy of unsynced records.
    if (Status s = Sync(); !s.ok()) return s;
    if (Status s = OpenSegment(last_seq_ + 1); !s.ok()) return s;
  }
  return Status::Ok();
}

Status WriteAheadLog::Append(const StreamPoint& point) {
  if (Status s = AppendLocked(point); !s.ok()) return s;
  if (unsynced_records_ >= options_.sync_every) return Sync();
  return Status::Ok();
}

Status WriteAheadLog::AppendBatch(std::span<const StreamPoint> batch) {
  obs::ScopedTimer timer(WalAppendBatchHist(), dir_,
                         static_cast<uint64_t>(last_seq_));
  for (const StreamPoint& point : batch) {
    if (Status s = AppendLocked(point); !s.ok()) return s;
  }
  if (unsynced_records_ >= options_.sync_every) return Sync();
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  Timer timer;
  if (Status s = FlushBuffer(); !s.ok()) return s;
  if (unsynced_records_ == 0) return Status::Ok();
  FDM_CHECK(fd_ >= 0);
  if (::fsync(fd_) != 0) {
    return Status::IoError("WAL fsync failed: " + dir_ + ": " +
                           std::strerror(errno));
  }
  unsynced_records_ = 0;
  WalFsyncHist().RecordWithContext(
      static_cast<uint64_t>(timer.ElapsedNanos()), dir_,
      static_cast<uint64_t>(last_seq_));
  return Status::Ok();
}

std::vector<std::string> WriteAheadLog::SegmentPaths() const {
  std::vector<std::string> paths;
  paths.reserve(segment_first_seqs_.size());
  for (const int64_t first : segment_first_seqs_) {
    paths.push_back(dir_ + "/" + SegmentName(first));
  }
  return paths;
}

Result<int64_t> WriteAheadLog::Replay(int64_t after_seq, StreamSink& sink,
                                      int64_t* mutations,
                                      DedupFilter* filter) const {
  FDM_CHECK_MSG(buffer_.empty() || buffer_.size() == sizeof(kSegmentMagic),
                "Sync() the WAL before Replay()");
  obs::ScopedTimer replay_timer(WalReplayHist(), dir_,
                                static_cast<uint64_t>(after_seq));
  int64_t replayed = 0;
  int64_t prev_seq = after_seq;

  // Batched apply through the shared applier, so rung-parallel sinks
  // replay at batched-ingestion speed — and so recovery and follower
  // tail application share one code path.
  WalBatchApplier applier(sink, options_.replay_batch, filter);

  for (size_t s = 0; s < segment_first_seqs_.size(); ++s) {
    // A whole segment is skippable when the next segment starts at or
    // before the replay point — every record in it has a smaller seq.
    if (s + 1 < segment_first_seqs_.size() &&
        segment_first_seqs_[s + 1] <= after_seq + 1) {
      continue;
    }
    const std::string path = dir_ + "/" + SegmentName(segment_first_seqs_[s]);
    auto loaded = ReadFileToString(path);
    if (!loaded.ok()) return loaded.status();
    const std::string& bytes = loaded.value();
    if (bytes.empty()) {
      // A crash between segment creation and the first flush leaves a
      // zero-length file (the magic was still buffered). It holds no
      // records, so skip it wherever it sits — warning only mid-log (the
      // newest segment is legitimately empty right after a rotation).
      if (s + 1 != segment_first_seqs_.size()) WarnZeroLengthSegmentOnce(path);
      continue;
    }
    if (bytes.size() < sizeof(kSegmentMagic)) {
      // A partially flushed magic; only the newest segment can legally be
      // in this state (the crash tail of the active segment).
      if (s + 1 == segment_first_seqs_.size()) continue;
      return Status::IoError("truncated WAL segment mid-log: " + path);
    }

    WalSegmentCursor cursor(bytes);
    WalRecordView record;
    while (cursor.Next(record)) {
      if (record.seq <= after_seq) continue;  // before the snapshot: skip
      if (record.seq != prev_seq + 1) {
        return Status::IoError(
            "WAL sequence gap: expected " + std::to_string(prev_seq + 1) +
            ", found " + std::to_string(record.seq) + " in " + path);
      }
      if (!applier.Add(record)) {
        return Status::IoError("WAL record dimension changed mid-log in " +
                               path);
      }
      prev_seq = record.seq;
      ++replayed;
      if (applier.ShouldFlush()) applier.Flush();
    }
    if (!cursor.status().ok()) {
      return Status::IoError(cursor.status().message() + ": " + path);
    }
    if (cursor.torn_tail() && s + 1 != segment_first_seqs_.size()) {
      return Status::IoError("corrupt record mid-WAL (not the newest "
                             "segment): " + path);
    }
  }
  applier.Flush();
  if (mutations != nullptr) {
    *mutations = static_cast<int64_t>(applier.mutations());
  }
  WalReplayRecordsCounter().Add(static_cast<uint64_t>(replayed));
  return replayed;
}

Status WriteAheadLog::TruncateBefore(int64_t before_seq) {
  size_t removable = 0;
  while (removable + 1 < segment_first_seqs_.size() &&
         segment_first_seqs_[removable + 1] <= before_seq) {
    ++removable;
  }
  for (size_t i = 0; i < removable; ++i) {
    const std::string path = dir_ + "/" + SegmentName(segment_first_seqs_[i]);
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec) {
      return Status::IoError("cannot remove WAL segment " + path + ": " +
                             ec.message());
    }
  }
  segment_first_seqs_.erase(segment_first_seqs_.begin(),
                            segment_first_seqs_.begin() + removable);
  return Status::Ok();
}

}  // namespace fdm
