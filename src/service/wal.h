#ifndef FDM_SERVICE_WAL_H_
#define FDM_SERVICE_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/stream_sink.h"
#include "geo/point_buffer.h"
#include "util/status.h"

namespace fdm {

/// Durability/performance knobs of the write-ahead log.
struct WalOptions {
  /// Rotate to a fresh segment file once the active one exceeds this size.
  size_t segment_bytes = 4u << 20;
  /// fsync after this many appended records (1 = fsync every record; large
  /// values batch the fsyncs, trading a bounded tail of re-playable — but
  /// possibly lost on power failure — records for throughput). `Sync()`
  /// forces one regardless.
  size_t sync_every = 256;
  /// Points per `ObserveBatch` call during replay (replay reuses the
  /// batched ingestion engine, so rung-parallel sinks recover in parallel).
  size_t replay_batch = 512;
};

/// Append-only, segmented, checksummed log of observed `StreamPoint`s — the
/// durability half the snapshot does not cover: crash recovery is "load the
/// latest snapshot, then replay the WAL tail after it".
///
/// On-disk layout: `<dir>/wal-<first_seq>.log` segment files. Each segment
/// starts with an 8-byte magic; records are framed as
///
///   payload length u32 | payload | FNV-1a 64 of payload
///
/// with payload = seq u64 | id i64 | group i32 | dim u32 | coords double[dim].
/// Sequence numbers are 1-based and dense: record `seq` is the `seq`-th
/// element ever observed by the session, so "replay after a snapshot taken
/// at `observed = N`" is exactly "replay records with seq > N".
///
/// Torn tails are expected (a crash can land mid-record): `Open` truncates
/// a torn tail off the newest segment before appending, and `Replay` stops
/// cleanly at a torn record in the newest segment. Corruption anywhere
/// else is reported as an error — that is data loss, not a crash artifact.
///
/// Not thread-safe; the session layer serializes access per session.
class WriteAheadLog {
 public:
  /// Opens (creating if needed) the log in `dir`. Scans existing segments
  /// to recover `last_seq` and truncates a torn tail off the newest
  /// segment.
  static Result<WriteAheadLog> Open(std::string dir, WalOptions options = {});

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// Appends one observation; assigns it `last_seq() + 1`. The record is
  /// durable once the next fsync (batched per `sync_every`, or explicit
  /// `Sync`) completes.
  Status Append(const StreamPoint& point);

  /// Appends a batch (one buffered write, one fsync-policy check).
  Status AppendBatch(std::span<const StreamPoint> batch);

  /// Flushes buffered records and fsyncs the active segment.
  Status Sync();

  /// Replays every record with `seq > after_seq` into `sink` through
  /// `ObserveBatch`, in sequence order. Returns the number of records
  /// replayed. The newest segment may end in a torn record (crash tail) —
  /// replay stops cleanly there.
  Result<int64_t> Replay(int64_t after_seq, StreamSink& sink) const;

  /// Deletes whole segments whose records all have `seq < before_seq`
  /// (call after a snapshot at `before_seq - 1` has been written). The
  /// active segment is never deleted.
  Status TruncateBefore(int64_t before_seq);

  /// Highest sequence number ever appended (0 when empty).
  int64_t last_seq() const { return last_seq_; }

  /// Records appended since the last successful fsync.
  size_t unsynced_records() const { return unsynced_records_; }

  /// Current segment files, sorted by first sequence number.
  std::vector<std::string> SegmentPaths() const;

  const std::string& dir() const { return dir_; }

 private:
  WriteAheadLog(std::string dir, WalOptions options)
      : dir_(std::move(dir)), options_(options) {}

  /// Opens a new active segment whose first record will be `first_seq`.
  Status OpenSegment(int64_t first_seq);
  Status FlushBuffer();
  Status AppendLocked(const StreamPoint& point);
  void CloseFd();

  std::string dir_;
  WalOptions options_;
  std::vector<int64_t> segment_first_seqs_;  // sorted; last = active segment
  int fd_ = -1;
  size_t active_segment_bytes_ = 0;
  std::string buffer_;  // records not yet written to the fd
  int64_t last_seq_ = 0;
  size_t unsynced_records_ = 0;
};

}  // namespace fdm

#endif  // FDM_SERVICE_WAL_H_
