#ifndef FDM_SERVICE_WAL_H_
#define FDM_SERVICE_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/stream_sink.h"
#include "geo/point_buffer.h"
#include "service/dedup_filter.h"
#include "util/status.h"

namespace fdm {

/// One decoded WAL record. `coords` points into cursor-owned scratch and
/// stays valid until the next `Next()` call.
struct WalRecordView {
  int64_t seq = 0;
  int64_t id = -1;
  int32_t group = 0;
  std::span<const double> coords;
};

/// Forward reader over the intact records of one WAL segment's raw bytes.
/// This is the one record parser in the system: `WriteAheadLog::Open` uses
/// it to recover the last sequence number, `Replay` to feed a sink, and the
/// replication layer (`src/replica/`) to apply shipped segment bytes on a
/// follower without owning a `WriteAheadLog`.
///
/// `Next` stops at the first torn record (length/checksum framing does not
/// hold — `torn_tail()` reports whether undecodable bytes remain) and
/// latches a non-OK `status()` on real corruption: a bad segment magic, or
/// a record whose checksum verifies but whose payload is malformed (that is
/// never a crash artifact).
class WalSegmentCursor {
 public:
  explicit WalSegmentCursor(std::string_view bytes);

  /// Advances to the next intact record. Returns false at the end of the
  /// intact prefix (check `status()` to distinguish "clean end / torn
  /// tail" from corruption).
  bool Next(WalRecordView& record);

  /// Non-OK after a bad magic or a checksum-valid but malformed payload.
  const Status& status() const { return status_; }

  /// True iff bytes remain past the last intact record (a crash tail).
  bool torn_tail() const { return valid_bytes_ < bytes_.size(); }

  /// Offset just past the last intact record (segment magic included), i.e.
  /// the truncation point that removes a torn tail.
  size_t valid_bytes() const { return valid_bytes_; }

 private:
  std::string_view bytes_;
  size_t offset_ = 0;
  size_t valid_bytes_ = 0;
  Status status_;
  std::vector<double> coords_;  // per-record scratch behind `record.coords`
};

/// `wal-<first_seq>.log`, zero-padded so lexicographic and numeric order
/// agree — the one definition of the segment file name, shared by the log
/// itself and the replication transport.
std::string WalSegmentFileName(int64_t first_seq);

/// Accumulates decoded WAL records and flushes them into a sink through
/// `ObserveBatch` — the one batched-apply path shared by crash-recovery
/// replay (`WriteAheadLog::Replay`) and follower tail application
/// (`ReplicaSession`), so both apply streams bit-identically and a fix to
/// either reaches the other. Callers decide when to flush (`ShouldFlush`
/// signals the configured batch size); sequence bookkeeping stays with the
/// caller, whose gap-handling policies differ.
class WalBatchApplier {
 public:
  /// When `filter` is non-null, every applied record's id is fed through
  /// `DedupFilter::InsertIfAbsent` — this is how crash recovery and
  /// follower tails reconstruct the duplicate guard exactly: the WAL is
  /// authoritative (records are applied regardless), the filter just
  /// relearns membership alongside.
  WalBatchApplier(StreamSink& sink, size_t batch_records,
                  DedupFilter* filter = nullptr)
      : sink_(sink),
        batch_records_(batch_records == 0 ? 1 : batch_records),
        filter_(filter) {}

  /// Buffers one record (coordinates copied). Returns false when the
  /// record's dimension disagrees with the buffered batch's.
  bool Add(const WalRecordView& record) {
    if (filter_ != nullptr) filter_->InsertIfAbsent(record.id);
    if (dim_ == 0) {
      dim_ = record.coords.size();
      coords_.reserve(batch_records_ * dim_);
    } else if (record.coords.size() != dim_) {
      return false;
    }
    coords_.insert(coords_.end(), record.coords.begin(),
                   record.coords.end());
    ids_.push_back(record.id);
    groups_.push_back(record.group);
    return true;
  }

  bool ShouldFlush() const { return ids_.size() >= batch_records_; }
  size_t pending() const { return ids_.size(); }

  /// Applies the buffered records through one `ObserveBatch` call; returns
  /// how many this call applied.
  size_t Flush() {
    if (ids_.empty()) return 0;
    std::vector<StreamPoint> points;
    points.reserve(ids_.size());
    for (size_t i = 0; i < ids_.size(); ++i) {
      points.push_back(StreamPoint{
          ids_[i], groups_[i],
          std::span<const double>(coords_.data() + i * dim_, dim_)});
    }
    mutations_ += sink_.ObserveBatch(points);
    const size_t applied = ids_.size();
    coords_.clear();
    ids_.clear();
    groups_.clear();
    return applied;
  }

  /// Total sink mutations across every `Flush` so far (the sum of
  /// `ObserveBatch` returns) — lets replay report how many applied records
  /// actually changed sink state, which the session's cumulative "kept"
  /// counter needs to survive crash recovery exactly.
  size_t mutations() const { return mutations_; }

 private:
  StreamSink& sink_;
  size_t batch_records_;
  DedupFilter* filter_;
  size_t mutations_ = 0;
  size_t dim_ = 0;
  std::vector<double> coords_;
  std::vector<int64_t> ids_;
  std::vector<int32_t> groups_;
};

/// One WAL segment file as seen by segment enumeration: its first sequence
/// number (from the file name), its size, and — when the caller computes it
/// (sealed segments only; the active segment keeps growing) — a whole-file
/// FNV-1a 64 checksum so a shipped copy can be verified byte-for-byte.
struct WalSegmentInfo {
  int64_t first_seq = 0;
  std::string path;
  uint64_t bytes = 0;
  uint64_t checksum = 0;  // 0 = not computed / not verifiable
};

/// Durability/performance knobs of the write-ahead log.
struct WalOptions {
  /// Rotate to a fresh segment file once the active one exceeds this size.
  size_t segment_bytes = 4u << 20;
  /// fsync after this many appended records (1 = fsync every record; large
  /// values batch the fsyncs, trading a bounded tail of re-playable — but
  /// possibly lost on power failure — records for throughput). `Sync()`
  /// forces one regardless.
  size_t sync_every = 256;
  /// Points per `ObserveBatch` call during replay (replay reuses the
  /// batched ingestion engine, so rung-parallel sinks recover in parallel).
  size_t replay_batch = 512;
};

/// Append-only, segmented, checksummed log of observed `StreamPoint`s — the
/// durability half the snapshot does not cover: crash recovery is "load the
/// latest snapshot, then replay the WAL tail after it".
///
/// On-disk layout: `<dir>/wal-<first_seq>.log` segment files. Each segment
/// starts with an 8-byte magic; records are framed as
///
///   payload length u32 | payload | FNV-1a 64 of payload
///
/// with payload = seq u64 | id i64 | group i32 | dim u32 | coords double[dim].
/// Sequence numbers are 1-based and dense: record `seq` is the `seq`-th
/// element ever observed by the session, so "replay after a snapshot taken
/// at `observed = N`" is exactly "replay records with seq > N".
///
/// Torn tails are expected (a crash can land mid-record): `Open` truncates
/// a torn tail off the newest segment before appending, and `Replay` stops
/// cleanly at a torn record in the newest segment. Corruption anywhere
/// else is reported as an error — that is data loss, not a crash artifact.
///
/// Not thread-safe; the session layer serializes access per session.
class WriteAheadLog {
 public:
  /// Opens (creating if needed) the log in `dir`. Scans existing segments
  /// to recover `last_seq` and truncates a torn tail off the newest
  /// segment.
  static Result<WriteAheadLog> Open(std::string dir, WalOptions options = {});

  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// Appends one observation; assigns it `last_seq() + 1`. The record is
  /// durable once the next fsync (batched per `sync_every`, or explicit
  /// `Sync`) completes.
  Status Append(const StreamPoint& point);

  /// Appends a batch (one buffered write, one fsync-policy check).
  Status AppendBatch(std::span<const StreamPoint> batch);

  /// Flushes buffered records and fsyncs the active segment.
  Status Sync();

  /// Replays every record with `seq > after_seq` into `sink` through
  /// `ObserveBatch`, in sequence order. Returns the number of records
  /// replayed; when `mutations` is non-null it receives how many of them
  /// changed sink state (summed `ObserveBatch` returns). When `filter` is
  /// non-null, replayed ids rebuild the duplicate guard (see
  /// `WalBatchApplier`). The newest segment may end in a torn record
  /// (crash tail) — replay stops cleanly there.
  Result<int64_t> Replay(int64_t after_seq, StreamSink& sink,
                         int64_t* mutations = nullptr,
                         DedupFilter* filter = nullptr) const;

  /// Deletes whole segments whose records all have `seq < before_seq`
  /// (call after a snapshot at `before_seq - 1` has been written). The
  /// active segment is never deleted.
  Status TruncateBefore(int64_t before_seq);

  /// Enumerates the segment files of the log at `dir` without opening it
  /// for appends — the read-only view the replication source exports.
  /// Segments are sorted by first sequence number; zero-length files (a
  /// crash between segment creation and the first flush) are skipped with
  /// a warning rather than reported, matching `Replay`'s tolerance.
  /// Checksums are left 0 (callers that ship bytes compute them for sealed
  /// segments; see `WalSegmentInfo`).
  static Result<std::vector<WalSegmentInfo>> ListSegments(
      const std::string& dir);

  /// Highest sequence number ever appended (0 when empty).
  int64_t last_seq() const { return last_seq_; }

  /// Records appended since the last successful fsync.
  size_t unsynced_records() const { return unsynced_records_; }

  /// Current segment files, sorted by first sequence number.
  std::vector<std::string> SegmentPaths() const;

  const std::string& dir() const { return dir_; }

 private:
  WriteAheadLog(std::string dir, WalOptions options)
      : dir_(std::move(dir)), options_(options) {}

  /// Opens a new active segment whose first record will be `first_seq`.
  Status OpenSegment(int64_t first_seq);
  Status FlushBuffer();
  Status AppendLocked(const StreamPoint& point);
  void CloseFd();

  std::string dir_;
  WalOptions options_;
  std::vector<int64_t> segment_first_seqs_;  // sorted; last = active segment
  int fd_ = -1;
  size_t active_segment_bytes_ = 0;
  std::string buffer_;  // records not yet written to the fd
  int64_t last_seq_ = 0;
  size_t unsynced_records_ = 0;
};

}  // namespace fdm

#endif  // FDM_SERVICE_WAL_H_
