#ifndef FDM_SERVICE_DURABLE_SESSION_H_
#define FDM_SERVICE_DURABLE_SESSION_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "core/solution.h"
#include "core/solve_cache.h"
#include "core/stream_sink.h"
#include "service/dedup_filter.h"
#include "service/wal.h"
#include "util/status.h"

namespace fdm {

class SnapshotReader;

/// Restores the sink embedded in one session snapshot (the payload
/// `DurableSession::TakeSnapshot` writes: tag, spec, stream position, sink
/// state). Fails — instead of restoring silently — when the tag is wrong,
/// the stored spec differs from `expected_spec`, or the embedded stream
/// position disagrees with the header/`expected_seq` (pass -1 to accept
/// any position). Shared by `DurableSession::Open` and the replica
/// bootstrap path, which restores from shipped bytes rather than a file.
Result<std::unique_ptr<StreamSink>> RestoreSessionSnapshot(
    SnapshotReader& reader, std::string_view expected_spec,
    int64_t expected_seq);

/// Counters persisted in the session snapshot's stats footer; declared
/// below (`ReadSessionFooters` needs the type).
struct SessionIngestCounters;

/// Reads the lenient footers that follow the sink state in a session
/// snapshot: the stats footer (into `counters` when non-null) and, after
/// it, the dedup footer — returning the restored duplicate-guard filter,
/// or null when the snapshot predates dedup, carries no filter, or has a
/// malformed tail. `duplicates_rejected` (when non-null) receives the
/// persisted rejection count alongside a non-null filter. Never fails:
/// like the stats footer, missing or foreign trailing bytes must cost
/// statistics at worst, never the restore. Shared by `DurableSession::Open`
/// and the replica bootstrap (which restores from shipped bytes).
std::unique_ptr<DedupFilter> ReadSessionFooters(
    SnapshotReader& reader, SessionIngestCounters* counters,
    int64_t* duplicates_rejected);

/// The replication advertisement a primary publishes at each durability
/// point (see `DurableSession::PublishReplicationState`): the stream
/// position and the sink's state version at that position. Followers use
/// the pair to detect staleness (`version` comparison is free) and to
/// cross-check determinism: a follower that has applied exactly `seq`
/// records must be at exactly `state_version`.
struct ReplicationAdvert {
  int64_t seq = 0;
  uint64_t state_version = 0;
};

/// Reads the advert of the session at `dir`; IoError when absent or torn
/// (the file is written atomically, so torn means foul play, but callers
/// treat both as "no advert available").
Result<ReplicationAdvert> ReadReplicationAdvert(const std::string& dir);

/// Cumulative ingest/durability counters of one session. Unlike the
/// sink-derived numbers (`ObservedElements` lives in sink state and
/// survives snapshots on its own), these exist only in the session layer —
/// so `TakeSnapshot` persists them in a stats footer after the sink state
/// and `Open` reloads them, adding back the WAL tail's replayed mutations.
/// The result: counts survive LRU spill and crash recovery exactly.
/// Snapshots that predate the footer load as zeros.
struct SessionIngestCounters {
  /// Sink mutations total (summed `Observe`/`ObserveBatch` returns; an
  /// element admitted by several candidate rungs may count more than once).
  int64_t kept_total = 0;
  /// `ObserveBatch` calls (not elements).
  int64_t ingest_batches = 0;
  int64_t snapshots_taken = 0;
  /// Wall time spent writing snapshots, milliseconds. The persisted value
  /// excludes the final file write of the snapshot carrying it (the footer
  /// is serialized before the write); the in-memory value includes it.
  double snapshot_write_ms_total = 0.0;
  /// Times this session was restored by `Open`.
  int64_t restores = 0;
  /// WAL records replayed across all restores.
  int64_t replayed_records = 0;
};

/// What one `Ingest` call did: how many points were applied (WAL-logged
/// and offered to the sink) and how many were rejected as exact
/// duplicates by the session's dedup filter (never both for one point).
/// Sessions without `dedup=on` report every point as accepted.
struct IngestOutcome {
  int64_t accepted = 0;
  int64_t duplicates = 0;
};

/// Durability knobs of one session.
struct DurableSessionOptions {
  WalOptions wal;
  /// Take a snapshot automatically after this many new records (0 = only
  /// explicit/background snapshots).
  size_t snapshot_every = 0;
  /// Snapshots retained on disk (older ones are pruned after each new one;
  /// at least 1).
  size_t keep_snapshots = 2;
  /// Query-path parallelism applied to the sink after every build/restore
  /// via `StreamSink::SetSolveThreads`: 0 = keep whatever the sink spec
  /// (or the restored snapshot) configured, 1 = force sequential, n = fan
  /// cold solves out over up to n workers of the shared solve pool (see
  /// core/solve_pool.h). Bit-identity preserving — the served solutions
  /// are byte-for-byte the sequential ones at any setting.
  int solve_threads = 0;
};

/// One durable streaming session: a sink plus its write-ahead log and
/// snapshot chain, under one directory:
///
///   <dir>/SPEC               the sink spec (text, one line)
///   <dir>/wal/wal-*.log      the write-ahead log segments
///   <dir>/snap/snap-<seq>.snap   checksummed snapshots (seq = observed)
///
/// Write path (WAL discipline): every observation is appended to the log
/// *before* it reaches the sink, so after a crash the union of the newest
/// loadable snapshot and the log tail always covers the applied stream.
/// fsyncs are batched (`WalOptions::sync_every`), so up to one batch of
/// acknowledged records can be lost on power failure — but never torn:
/// recovery replays the intact prefix of the tail and the restored sink is
/// bit-identical to an uninterrupted run over that prefix.
///
/// `TakeSnapshot` writes snap/<observed>.snap atomically, then prunes WAL
/// segments the snapshot made redundant and snapshots beyond
/// `keep_snapshots`.
///
/// Thread-safety: mutating operations (`Observe`, `ObserveBatch`,
/// `TakeSnapshot`, `Sync`) require exclusive access; the const query
/// surface (`Solve`, the counters, `SolveCacheStats`) may run concurrently
/// with itself. `SessionManager` enforces exactly this with a per-session
/// reader–writer lock, so queries never block each other and cached SOLVEs
/// are served while other sessions ingest.
class DurableSession {
 public:
  /// Creates a fresh session directory. Fails if `dir` already contains a
  /// session (use `Open`).
  static Result<DurableSession> Create(std::string dir, std::string spec,
                                       DurableSessionOptions options = {});

  /// Opens an existing session: restores the newest loadable snapshot
  /// (falling back to older snapshots, then to a fresh sink, on checksum
  /// failure) and replays the WAL tail after it through `ObserveBatch`.
  static Result<DurableSession> Open(std::string dir,
                                     DurableSessionOptions options = {});

  /// True iff `dir` holds a session (its SPEC file exists).
  static bool Exists(const std::string& dir);

  /// WAL-append then apply. May trigger an automatic snapshot
  /// (`snapshot_every`). Rejects points whose dimension does not match the
  /// spec *before* they reach the WAL — a malformed point must never be
  /// persisted, or every future recovery would replay it (the sinks
  /// themselves only DCHECK the dimension).
  ///
  /// A failed WAL append POISONS the session (every later call returns
  /// the latched error): the log may then hold a record the sink never
  /// applied, so continuing — or snapshotting — would break the
  /// `snapshot seq + WAL tail == stream` invariant recovery relies on.
  /// The cure is to drop the object and `Open` again: the WAL is the
  /// source of truth, and replay reconciles the sink to it.
  Status Observe(const StreamPoint& point);
  Status ObserveBatch(std::span<const StreamPoint> batch);

  /// The duplicate-aware ingest path: with `dedup=on` in the spec, points
  /// whose id the session has already accepted are rejected *before* the
  /// WAL append — an exact duplicate is an idempotent no-op (no WAL
  /// record, no state-version bump, no admission scan) and is reported in
  /// `IngestOutcome::duplicates` instead. Rejection is exact, not
  /// probabilistic: a filter hit falls back to an exact id check, so a
  /// genuinely new point is never dropped. Points with negative ids carry
  /// no identity and always pass through. `as_batch` selects the same
  /// element/batch machinery `Observe`/`ObserveBatch` use (WAL framing,
  /// `ingest_batches` accounting) — those two methods are thin wrappers
  /// over this one.
  Result<IngestOutcome> Ingest(std::span<const StreamPoint> batch,
                               bool as_batch);

  /// Current solution, served through the session's `SolveCache`: the
  /// expensive post-processing runs only when the sink's state version
  /// moved since the last query; otherwise the memoized solution is
  /// returned verbatim. Safe to call concurrently with other readers
  /// (`Stats`, other `Solve`s) — the manager's reader–writer session lock
  /// excludes ingest while a query reads the sink.
  Result<Solution> Solve() const {
    const StreamSink& sink = *sink_;
    return solve_cache_->GetOrCompute(
        sink.StateVersion(), [&sink] { return sink.Solve(); }, dir_);
  }

  /// Replaces the session's solve cache (the manager hands every session
  /// the cache owned by its registry entry, so memoized solutions survive
  /// spill/reload and crash-recovery cycles: the restored sink's state
  /// version is chunking-invariant, so a still-matching cache entry is
  /// still correct and the first query after recovery is a cache hit).
  void AttachSolveCache(std::shared_ptr<SolveCache> cache) {
    if (cache != nullptr) solve_cache_ = std::move(cache);
  }

  /// The sink's monotone state version (see `StreamSink::StateVersion`).
  uint64_t StateVersion() const { return sink_->StateVersion(); }

  /// Query-path counters of this session's cache.
  SolveCache::Stats SolveCacheStats() const {
    return solve_cache_->GetStats();
  }

  /// Fsyncs the WAL and writes a snapshot at the current stream position.
  Status TakeSnapshot();

  /// Fsyncs the WAL (durability barrier without a snapshot) and publishes
  /// the replication advertisement for this position.
  Status Sync();

  /// Atomically (re)writes `<dir>/REPL` with the current stream position
  /// and sink state version — the primary's advertised replication state.
  /// Called by `Sync`/`TakeSnapshot`; exposed for callers that want a
  /// fresher advert between durability points.
  Status PublishReplicationState();

  const std::string& dir() const { return dir_; }
  const std::string& spec() const { return spec_; }
  /// Cumulative counters, footer-persisted (see `SessionIngestCounters`).
  const SessionIngestCounters& IngestCounters() const { return counters_; }
  /// True iff the spec enables the duplicate guard (`dedup=on`).
  bool DedupEnabled() const { return dedup_ != nullptr; }
  /// Exact duplicates rejected before the WAL, cumulative. Persisted in
  /// the snapshot's dedup footer — exact across LRU spill (which snapshots
  /// first) and snapshot-covered recovery; rejections since the last
  /// snapshot are deliberately not WAL-logged (they ARE the records kept
  /// out of the log), so a hard crash forgets only that recent delta.
  int64_t DuplicatesRejected() const { return duplicates_rejected_; }
  /// The duplicate guard (null when `dedup=off`).
  const DedupFilter* dedup_filter() const { return dedup_.get(); }
  int64_t ObservedElements() const { return sink_->ObservedElements(); }
  size_t StoredElements() const { return sink_->StoredElements(); }
  /// Stream position of the newest on-disk snapshot (0 = none).
  int64_t SnapshotSeq() const { return snapshot_seq_; }
  /// Records observed since the newest snapshot.
  int64_t UnsnapshottedRecords() const {
    return sink_->ObservedElements() - snapshot_seq_;
  }
  StreamSink& sink() { return *sink_; }
  const StreamSink& sink() const { return *sink_; }

 private:
  DurableSession(std::string dir, std::string spec,
                 DurableSessionOptions options)
      : dir_(std::move(dir)),
        spec_(std::move(spec)),
        options_(options),
        solve_cache_(std::make_shared<SolveCache>()) {}

  Status MaybeAutoSnapshot();
  /// Deletes snapshots beyond `keep_snapshots`; returns the seq of the
  /// oldest snapshot still on disk (`snapshot_seq_` if none).
  Result<int64_t> PruneSnapshots();
  std::string SnapshotPath(int64_t seq) const;
  Status CheckDim(std::span<const StreamPoint> batch) const;

  std::string dir_;
  std::string spec_;
  DurableSessionOptions options_;
  std::unique_ptr<StreamSink> sink_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<DedupFilter> dedup_;  // null unless spec says dedup=on
  int64_t duplicates_rejected_ = 0;
  uint64_t probe_sample_ = 0;  // 1-in-64 sampling of the probe histogram
  std::shared_ptr<SolveCache> solve_cache_;  // never null
  size_t dim_ = 0;  // from the spec; every ingested point must match
  int64_t snapshot_seq_ = 0;
  SessionIngestCounters counters_;
  Status broken_;  // latched WAL-append failure; session needs a reopen
};

}  // namespace fdm

#endif  // FDM_SERVICE_DURABLE_SESSION_H_
