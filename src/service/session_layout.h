#ifndef FDM_SERVICE_SESSION_LAYOUT_H_
#define FDM_SERVICE_SESSION_LAYOUT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fdm {

/// The on-disk layout of one durable session directory, shared by the
/// writer side (`DurableSession`) and the read-only replication side
/// (`DirReplicationSource`), so a follower can interpret a primary's
/// directory without constructing a session over it:
///
///   <dir>/SPEC               the sink spec (text, one line)
///   <dir>/wal/wal-*.log      write-ahead log segments
///   <dir>/snap/snap-<seq>.snap   checksummed snapshots (seq = observed)
///   <dir>/REPL               replication advertisement (stream position +
///                            sink state version at the last durability
///                            point; written atomically, absent until the
///                            first Sync/TakeSnapshot)

std::string SessionSpecPath(const std::string& dir);
std::string SessionWalDir(const std::string& dir);
std::string SessionSnapDir(const std::string& dir);
std::string SessionReplAdvertPath(const std::string& dir);

/// `snap-<seq>.snap` with the zero-padded name that makes lexicographic
/// and numeric order agree.
std::string SessionSnapshotFileName(int64_t seq);

/// Snapshot files in `snap_dir`, as (seq, path), sorted ascending by seq.
/// Unparsable names are ignored; a missing directory yields an empty list.
std::vector<std::pair<int64_t, std::string>> ListSessionSnapshots(
    const std::string& snap_dir);

}  // namespace fdm

#endif  // FDM_SERVICE_SESSION_LAYOUT_H_
