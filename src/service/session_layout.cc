#include "service/session_layout.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

namespace fdm {

std::string SessionSpecPath(const std::string& dir) { return dir + "/SPEC"; }
std::string SessionWalDir(const std::string& dir) { return dir + "/wal"; }
std::string SessionSnapDir(const std::string& dir) { return dir + "/snap"; }
std::string SessionReplAdvertPath(const std::string& dir) {
  return dir + "/REPL";
}

std::string SessionSnapshotFileName(int64_t seq) {
  char name[48];
  std::snprintf(name, sizeof(name), "snap-%020lld.snap",
                static_cast<long long>(seq));
  return name;
}

std::vector<std::pair<int64_t, std::string>> ListSessionSnapshots(
    const std::string& snap_dir) {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(snap_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0 ||
        name.size() < 6 + 5 ||  // "snap-" + at least one digit + ".snap"
        name.substr(name.size() - 5) != ".snap") {
      continue;
    }
    char* end = nullptr;
    const long long seq = std::strtoll(name.c_str() + 5, &end, 10);
    if (end == nullptr || std::strcmp(end, ".snap") != 0 || seq < 1) continue;
    found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace fdm
