#ifndef FDM_HARNESS_REGISTRY_H_
#define FDM_HARNESS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/solution.h"
#include "core/stream_sink.h"
#include "core/streaming_dm.h"
#include "data/dataset.h"
#include "harness/experiment.h"
#include "util/status.h"

namespace fdm {

/// Builds a fresh streaming sink for one run. The factory reads whatever
/// it needs from the config (constraint, ε, bounds, batching knobs) and
/// must not retain references to it.
using StreamSinkFactory = std::function<Result<std::unique_ptr<StreamSink>>(
    const Dataset& dataset, const RunConfig& config)>;

/// Solves one offline run over the whole dataset.
using OfflineSolver = std::function<Result<Solution>(
    const Dataset& dataset, const RunConfig& config)>;

/// One algorithm as the harness sees it: a display name and either a
/// streaming-sink factory or an offline solver.
struct AlgorithmEntry {
  std::string name;
  bool streaming = false;
  StreamSinkFactory make_sink;  // set iff `streaming`
  OfflineSolver solve;          // set iff `!streaming`
};

/// The registry the harness dispatches through, keyed by `AlgorithmKind`.
///
/// All built-in algorithms (the paper's six plus the unconstrained
/// streaming baseline and the sharded driver) are pre-registered; benches,
/// examples, and tests can register additional scenarios (windowed,
/// alternative shardings, …) — or override a builtin — without touching
/// the harness, and `RunAlgorithm`/`RunRepeated` pick them up uniformly.
class AlgorithmRegistry {
 public:
  /// The process-wide registry, with builtins pre-registered.
  static AlgorithmRegistry& Instance();

  /// Registers (or replaces) the entry for `kind`.
  void Register(AlgorithmKind kind, AlgorithmEntry entry);

  /// The entry for `kind`, or nullptr if none is registered.
  const AlgorithmEntry* Find(AlgorithmKind kind) const;

  /// All registered kinds, ascending by enum value.
  std::vector<AlgorithmKind> Kinds() const;

 private:
  AlgorithmRegistry();  // registers the builtins

  std::map<AlgorithmKind, AlgorithmEntry> entries_;
};

/// The streaming options a config implies (ε, bounds, batch + solve
/// threads).
StreamingOptions StreamingOptionsFrom(const RunConfig& config);

}  // namespace fdm

#endif  // FDM_HARNESS_REGISTRY_H_
