#ifndef FDM_HARNESS_EXPERIMENT_H_
#define FDM_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/fairness.h"
#include "data/dataset.h"
#include "obs/histogram.h"
#include "util/status.h"

namespace fdm {

/// Algorithms the experiments compare (Section V-A "Algorithms"), plus the
/// scenario sinks layered on the library (unconstrained streaming and the
/// sharded coreset driver). Each kind is resolved through the algorithm
/// registry (`harness/registry.h`) — benches and examples construct every
/// algorithm uniformly, and new scenarios plug in by registering an entry
/// rather than editing the harness.
enum class AlgorithmKind {
  kGmm,       // unconstrained greedy upper-bound reference
  kFairSwap,  // offline, m = 2 [32]
  kFairFlow,  // offline, any m [32]
  kFairGmm,   // offline, small k/m [32]
  kSfdm1,     // this paper, streaming, m = 2
  kSfdm2,     // this paper, streaming, any m
  kStreamingDm,  // Algorithm 1, streaming, unconstrained
  kSharded,      // sharded composable-coreset driver, unconstrained
  kSlidingWindow,  // checkpointed sliding-window adapter over Algorithm 1
};

std::string_view AlgorithmName(AlgorithmKind kind);

/// One experiment cell: algorithm × dataset × constraint × parameters.
struct RunConfig {
  AlgorithmKind algorithm = AlgorithmKind::kSfdm2;
  FairnessConstraint constraint;
  /// Streaming guess-ladder ε (also FairFlow's ladder step).
  double epsilon = 0.1;
  /// Seed for the stream permutation / GMM start point; varied across the
  /// repetitions of an experiment.
  uint64_t permutation_seed = 1;
  /// Distance bounds for the streaming guess ladders (ignored by offline
  /// algorithms). Must be positive for streaming runs.
  DistanceBounds bounds;
  /// Streaming ingestion: elements per `ObserveBatch` call; `0` or `1`
  /// feeds the stream per-element through `Observe`. Output is identical
  /// either way (the StreamSink contract); batching changes only the cost
  /// profile.
  size_t batch_size = 0;
  /// Threads batched ingestion spreads rungs/shards over
  /// (see `StreamingOptions::batch_threads`).
  int batch_threads = 1;
  /// Threads `Solve()` fans the per-rung (per-shard) post-processing over
  /// (see `StreamingOptions::solve_threads`; 1 = sequential, 0 = all
  /// hardware threads). Bit-identity preserving, so it never changes a
  /// cell's reported solution — only its query latency.
  int solve_threads = 1;
  /// Shard count for `AlgorithmKind::kSharded`.
  size_t num_shards = 4;
  /// Window length for `AlgorithmKind::kSlidingWindow`; `0` means the whole
  /// dataset (the windowed run then matches the one-pass setting).
  int64_t window_size = 0;
  /// Checkpoint replicas for `AlgorithmKind::kSlidingWindow` (coverage
  /// granularity; live instances ≤ checkpoints + 1).
  int64_t window_checkpoints = 4;
  /// Interleaved-query trace mode (streaming only): call `Solve()` after
  /// every `solve_every` ingested elements, through a `SolveCache` keyed by
  /// the sink's state version — the serving-path exercise of the
  /// incremental post-processing. `0` (default) solves only at the end.
  /// The final reported solution is unchanged either way (`Solve` is
  /// anytime and the cache is exact).
  size_t solve_every = 0;
  /// Replica drill (streaming kinds with a sink-spec mapping): after the
  /// run, re-ingest the same permuted stream through a durable primary
  /// session in a scratch directory (snapshot at the midpoint, WAL-only
  /// tail), bootstrap a follower off it through the replication layer
  /// (`src/replica/`), and verify the follower's `Solve()` is
  /// bit-identical to the primary's at the matched state version. Results
  /// land in `RunResult::replica_*`; the drill never alters the run's own
  /// metrics or solution.
  bool replica_drill = false;
};

/// Measured outcome of one run.
struct RunResult {
  bool ok = false;
  std::string error;
  /// Distance-kernel dispatch target the run executed under
  /// ("scalar" | "avx2" | "neon" — see `geo/simd/kernel_dispatch.h`), so
  /// recorded timings are self-describing. Dispatch never changes outputs,
  /// only throughput.
  std::string kernel_target;

  double diversity = 0.0;
  /// Offline algorithms: end-to-end solve time. Streaming: stream + post.
  double total_time_sec = 0.0;
  /// Streaming only: one-pass processing time and per-element average.
  double stream_time_sec = 0.0;
  double post_time_sec = 0.0;
  double avg_update_ms = 0.0;
  /// Streaming: distinct stored elements. Offline: n (whole dataset).
  size_t stored_elements = 0;
  /// Trace mode (`RunConfig::solve_every > 0`): mid-stream solves issued
  /// and how many were answered by the solve cache without re-running the
  /// post-processing (the state version had not moved).
  size_t intermediate_solves = 0;
  size_t solve_cache_hits = 0;
  /// Trace mode: total wall time spent in mid-stream solves (excluded from
  /// `stream_time_sec` so one-pass numbers stay comparable).
  double trace_solve_time_sec = 0.0;
  /// Trace mode: per-solve latency distribution (cached and cold solves
  /// pooled — `solve_cache_hits` separates the populations). Present in
  /// every build configuration; the histogram type is plain arithmetic and
  /// is not compiled out by `FDM_NO_METRICS`.
  obs::HistogramSnapshot trace_solve_hist;

  /// Replica drill (`RunConfig::replica_drill`): whether the drill ran to
  /// the comparison (false also when the kind has no sink-spec mapping or
  /// scratch I/O failed — see `replica_error`), whether the follower's
  /// solution and state version matched the primary's exactly, the
  /// follower's end-to-end bootstrap+catch-up throughput, and its lag
  /// after the final poll (0 = fully caught up).
  bool replica_checked = false;
  bool replica_identical = false;
  double replica_catchup_points_per_sec = 0.0;
  int64_t replica_final_lag = 0;
  std::string replica_error;

  std::vector<int64_t> selected_ids;
};

/// Runs one algorithm once. Streaming algorithms consume the dataset in
/// the random order determined by `permutation_seed`; offline algorithms
/// get a start index derived from the same seed (the paper averages each
/// experiment over 10 such runs).
RunResult RunAlgorithm(const Dataset& dataset, const RunConfig& config);

/// Mean metrics over `runs` repetitions with seeds `1..runs`.
/// Failed repetitions are excluded from the means; `ok_runs` reports how
/// many succeeded.
struct AggregateResult {
  int ok_runs = 0;
  int total_runs = 0;
  std::string error;  // first error seen, if any
  double diversity = 0.0;
  /// Population standard deviation of the per-run diversities — the paper
  /// reports means over 10 permutations; the spread quantifies the
  /// order-sensitivity of the streaming algorithms.
  double diversity_stddev = 0.0;
  double total_time_sec = 0.0;
  double stream_time_sec = 0.0;
  double post_time_sec = 0.0;
  double avg_update_ms = 0.0;
  double stored_elements = 0.0;
};

AggregateResult RunRepeated(const Dataset& dataset, RunConfig config,
                            int runs);

/// Estimates distance bounds for a dataset once per experiment
/// (sampled, deterministic, with the slack the ladder analyses need).
DistanceBounds BoundsForExperiments(const Dataset& dataset);

}  // namespace fdm

#endif  // FDM_HARNESS_EXPERIMENT_H_
