#include "harness/experiment.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/solution.h"
#include "core/solve_cache.h"
#include "core/stream_sink.h"
#include "geo/point_buffer.h"
#include "geo/simd/kernel_dispatch.h"
#include "harness/registry.h"
#include "replica/replica_session.h"
#include "replica/replication_source.h"
#include "service/durable_session.h"
#include "service/sink_spec.h"
#include "util/check.h"
#include "util/timer.h"

namespace fdm {

std::string_view AlgorithmName(AlgorithmKind kind) {
  const AlgorithmEntry* entry = AlgorithmRegistry::Instance().Find(kind);
  return entry == nullptr ? std::string_view("unknown") : entry->name;
}

namespace {

RunResult FromSolution(const Result<Solution>& solution, double total_sec,
                       size_t n) {
  RunResult r;
  r.total_time_sec = total_sec;
  r.stored_elements = n;  // offline algorithms keep the whole dataset
  if (!solution.ok()) {
    r.error = solution.status().ToString();
    return r;
  }
  r.ok = true;
  r.diversity = solution.value().diversity;
  r.selected_ids = solution.value().Ids();
  return r;
}

RunResult RunOffline(const Dataset& dataset, const RunConfig& config,
                     const AlgorithmEntry& entry) {
  Timer timer;
  auto solution = entry.solve(dataset, config);
  return FromSolution(solution, timer.ElapsedSeconds(), dataset.size());
}

RunResult RunStreaming(const Dataset& dataset, const RunConfig& config,
                       const AlgorithmEntry& entry) {
  RunResult r;
  auto created = entry.make_sink(dataset, config);
  if (!created.ok()) {
    r.error = created.status().ToString();
    return r;
  }
  StreamSink& sink = *created.value();
  const std::vector<size_t> order =
      StreamOrder(dataset.size(), config.permutation_seed);

  Timer stream_timer;
  if (config.solve_every == 0) {
    IngestStream(sink, dataset, order, config.batch_size);
    r.stream_time_sec = stream_timer.ElapsedSeconds();
  } else {
    // Interleaved-query trace: ingest in `solve_every`-element slices
    // (each fed through the configured batch size) and query after every
    // slice, through a version-keyed SolveCache — the same incremental
    // path the serving layer uses. Solve time is tracked separately so the
    // one-pass stream cost stays comparable to non-traced runs.
    SolveCache cache;
    double solve_sec = 0.0;
    size_t fed = 0;
    while (fed < order.size()) {
      const size_t slice = std::min(config.solve_every, order.size() - fed);
      IngestStream(sink, dataset,
                   std::span<const size_t>(order).subspan(fed, slice),
                   config.batch_size);
      fed += slice;
      Timer solve_timer;
      (void)cache.GetOrCompute(sink.StateVersion(),
                               [&sink] { return sink.Solve(); });
      r.trace_solve_hist.Record(
          static_cast<uint64_t>(solve_timer.ElapsedNanos()));
      solve_sec += solve_timer.ElapsedSeconds();
      ++r.intermediate_solves;
    }
    r.trace_solve_time_sec = solve_sec;
    r.solve_cache_hits = static_cast<size_t>(cache.GetStats().hits);
    r.stream_time_sec = stream_timer.ElapsedSeconds() - solve_sec;
  }

  Timer post_timer;
  auto solution = sink.Solve();
  r.post_time_sec = post_timer.ElapsedSeconds();
  r.total_time_sec = r.stream_time_sec + r.post_time_sec;
  r.avg_update_ms = dataset.size() > 0
                        ? 1e3 * r.stream_time_sec /
                              static_cast<double>(dataset.size())
                        : 0.0;
  r.stored_elements = sink.StoredElements();
  if (!solution.ok()) {
    r.error = solution.status().ToString();
    return r;
  }
  r.ok = true;
  r.diversity = solution.value().diversity;
  r.selected_ids = solution.value().Ids();
  return r;
}

/// The sink spec a drill primary runs under — the same algorithm family
/// and parameters as the harness run, expressed in the service layer's
/// dataset-free configuration language.
Result<std::string> DrillSpecFor(const Dataset& dataset,
                                 const RunConfig& config) {
  SinkSpec spec;
  switch (config.algorithm) {
    case AlgorithmKind::kStreamingDm: spec.algo = "streaming_dm"; break;
    case AlgorithmKind::kSfdm1: spec.algo = "sfdm1"; break;
    case AlgorithmKind::kSfdm2: spec.algo = "sfdm2"; break;
    case AlgorithmKind::kSharded: spec.algo = "sharded"; break;
    case AlgorithmKind::kSlidingWindow: spec.algo = "sliding_window"; break;
    default:
      return Status::Unsupported(
          "no sink-spec mapping for algorithm '" +
          std::string(AlgorithmName(config.algorithm)) + "'");
  }
  spec.dim = dataset.dim();
  spec.metric = dataset.metric_kind();
  spec.epsilon = config.epsilon;
  spec.d_min = config.bounds.min;
  spec.d_max = config.bounds.max;
  if (config.algorithm == AlgorithmKind::kSfdm1 ||
      config.algorithm == AlgorithmKind::kSfdm2) {
    spec.quotas = config.constraint.quotas;
  } else {
    spec.k = config.constraint.TotalK();
  }
  if (config.algorithm == AlgorithmKind::kSharded) {
    spec.shards = config.num_shards;
  }
  if (config.algorithm == AlgorithmKind::kSlidingWindow) {
    spec.window = config.window_size > 0
                      ? config.window_size
                      : static_cast<int64_t>(dataset.size());
    spec.checkpoints = config.window_checkpoints;
  }
  return spec.ToString();
}

/// Runs the replica drill: durable primary over the run's permuted stream
/// (midpoint snapshot + WAL-only tail), follower bootstrapped through the
/// replication layer, bit-identical comparison at the matched version.
void RunReplicaDrill(const Dataset& dataset, const RunConfig& config,
                     std::span<const size_t> order, RunResult& r) {
  auto spec = DrillSpecFor(dataset, config);
  if (!spec.ok()) {
    r.replica_error = spec.status().ToString();
    return;
  }
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("fdm_replica_drill_p" + std::to_string(::getpid()) + "_s" +
        std::to_string(config.permutation_seed) + "_a" +
        std::to_string(static_cast<int>(config.algorithm))))
          .string();
  std::filesystem::remove_all(dir);
  auto fail = [&](const Status& status) {
    r.replica_error = status.ToString();
    std::filesystem::remove_all(dir);
  };

  auto primary = DurableSession::Create(dir, *spec);
  if (!primary.ok()) return fail(primary.status());
  std::vector<StreamPoint> batch;
  batch.reserve(256);
  const size_t mid = order.size() / 2;
  for (size_t i = 0; i < order.size(); ++i) {
    batch.push_back(dataset.At(order[i]));
    if (batch.size() == 256 || i + 1 == mid || i + 1 == order.size()) {
      if (Status s = primary->ObserveBatch(batch); !s.ok()) return fail(s);
      batch.clear();
      if (i + 1 == mid) {
        if (Status s = primary->TakeSnapshot(); !s.ok()) return fail(s);
      }
    }
  }
  if (Status s = primary->Sync(); !s.ok()) return fail(s);

  Timer timer;
  auto follower = ReplicaSession::Bootstrap(
      std::make_shared<DirReplicationSource>(dir));
  const double catchup_sec = timer.ElapsedSeconds();
  if (!follower.ok()) return fail(follower.status());

  r.replica_checked = true;
  r.replica_catchup_points_per_sec =
      catchup_sec > 0.0
          ? static_cast<double>(order.size()) / catchup_sec
          : 0.0;
  r.replica_final_lag = follower->Stats().lag;

  const auto follower_solution = follower->Solve();
  const auto primary_solution = primary->Solve();
  bool identical = follower->StateVersion() == primary->StateVersion() &&
                   follower_solution.ok() == primary_solution.ok();
  if (identical && follower_solution.ok()) {
    identical = follower_solution->Ids() == primary_solution->Ids() &&
                follower_solution->diversity ==
                    primary_solution->diversity &&
                follower_solution->mu == primary_solution->mu;
  }
  r.replica_identical = identical;
  std::filesystem::remove_all(dir);
}

}  // namespace

RunResult RunAlgorithm(const Dataset& dataset, const RunConfig& config) {
  FDM_CHECK(dataset.size() > 0);
  const AlgorithmEntry* entry =
      AlgorithmRegistry::Instance().Find(config.algorithm);
  FDM_CHECK_MSG(entry != nullptr, "algorithm kind not registered");
  RunResult r = entry->streaming ? RunStreaming(dataset, config, *entry)
                                 : RunOffline(dataset, config, *entry);
  if (config.replica_drill && entry->streaming) {
    const std::vector<size_t> order =
        StreamOrder(dataset.size(), config.permutation_seed);
    RunReplicaDrill(dataset, config, order, r);
  }
  r.kernel_target = std::string(simd::ActiveKernelName());
  return r;
}

AggregateResult RunRepeated(const Dataset& dataset, RunConfig config,
                            int runs) {
  AggregateResult agg;
  agg.total_runs = runs;
  double diversity_sq_sum = 0.0;
  for (int rep = 1; rep <= runs; ++rep) {
    config.permutation_seed = static_cast<uint64_t>(rep);
    const RunResult r = RunAlgorithm(dataset, config);
    if (!r.ok) {
      if (agg.error.empty()) agg.error = r.error;
      continue;
    }
    ++agg.ok_runs;
    agg.diversity += r.diversity;
    diversity_sq_sum += r.diversity * r.diversity;
    agg.total_time_sec += r.total_time_sec;
    agg.stream_time_sec += r.stream_time_sec;
    agg.post_time_sec += r.post_time_sec;
    agg.avg_update_ms += r.avg_update_ms;
    agg.stored_elements += static_cast<double>(r.stored_elements);
  }
  if (agg.ok_runs > 0) {
    const double d = agg.ok_runs;
    agg.diversity /= d;
    const double variance =
        diversity_sq_sum / d - agg.diversity * agg.diversity;
    agg.diversity_stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
    agg.total_time_sec /= d;
    agg.stream_time_sec /= d;
    agg.post_time_sec /= d;
    agg.avg_update_ms /= d;
    agg.stored_elements /= d;
  }
  return agg;
}

DistanceBounds BoundsForExperiments(const Dataset& dataset) {
  return EstimateDistanceBounds(dataset, /*sample_size=*/1500,
                                /*seed=*/0x5eedb07d5ULL, /*slack=*/2.0);
}

}  // namespace fdm
