#include "harness/experiment.h"

#include <cmath>

#include "baselines/fair_flow.h"
#include "baselines/fair_gmm.h"
#include "baselines/fair_swap.h"
#include "core/diversity.h"
#include "core/gmm.h"
#include "core/sfdm1.h"
#include "core/sfdm2.h"
#include "core/solution.h"
#include "core/streaming_dm.h"
#include "util/check.h"
#include "util/timer.h"

namespace fdm {

std::string_view AlgorithmName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kGmm:
      return "GMM";
    case AlgorithmKind::kFairSwap:
      return "FairSwap";
    case AlgorithmKind::kFairFlow:
      return "FairFlow";
    case AlgorithmKind::kFairGmm:
      return "FairGMM";
    case AlgorithmKind::kSfdm1:
      return "SFDM1";
    case AlgorithmKind::kSfdm2:
      return "SFDM2";
  }
  return "unknown";
}

namespace {

RunResult FromSolution(const Result<Solution>& solution, double total_sec,
                       size_t n) {
  RunResult r;
  r.total_time_sec = total_sec;
  r.stored_elements = n;  // offline algorithms keep the whole dataset
  if (!solution.ok()) {
    r.error = solution.status().ToString();
    return r;
  }
  r.ok = true;
  r.diversity = solution.value().diversity;
  r.selected_ids = solution.value().Ids();
  return r;
}

RunResult RunOffline(const Dataset& dataset, const RunConfig& config) {
  Timer timer;
  const size_t start_index =
      static_cast<size_t>(config.permutation_seed % dataset.size());
  switch (config.algorithm) {
    case AlgorithmKind::kGmm: {
      const std::vector<size_t> universe = [&dataset] {
        std::vector<size_t> u(dataset.size());
        for (size_t i = 0; i < u.size(); ++i) u[i] = i;
        return u;
      }();
      const std::vector<size_t> rows =
          GreedyGmm(dataset, universe,
                    static_cast<size_t>(config.constraint.TotalK()), {},
                    start_index);
      const double elapsed = timer.ElapsedSeconds();
      return FromSolution(Solution::FromIndices(dataset, rows), elapsed,
                          dataset.size());
    }
    case AlgorithmKind::kFairSwap: {
      auto sol = FairSwap(dataset, config.constraint, start_index);
      return FromSolution(sol, timer.ElapsedSeconds(), dataset.size());
    }
    case AlgorithmKind::kFairFlow: {
      FairFlowOptions options;
      options.epsilon = config.epsilon;
      options.start_index = start_index;
      auto sol = FairFlow(dataset, config.constraint, options);
      return FromSolution(sol, timer.ElapsedSeconds(), dataset.size());
    }
    case AlgorithmKind::kFairGmm: {
      FairGmmOptions options;
      options.start_index = start_index;
      auto sol = FairGmm(dataset, config.constraint, options);
      return FromSolution(sol, timer.ElapsedSeconds(), dataset.size());
    }
    default:
      FDM_CHECK_MSG(false, "not an offline algorithm");
      return {};
  }
}

template <typename Algo>
RunResult RunStreaming(const Dataset& dataset, const RunConfig& config,
                       Result<Algo> created) {
  RunResult r;
  if (!created.ok()) {
    r.error = created.status().ToString();
    return r;
  }
  Algo& algo = created.value();
  const std::vector<size_t> order =
      StreamOrder(dataset.size(), config.permutation_seed);

  Timer stream_timer;
  for (const size_t row : order) {
    algo.Observe(dataset.At(row));
  }
  r.stream_time_sec = stream_timer.ElapsedSeconds();

  Timer post_timer;
  auto solution = algo.Solve();
  r.post_time_sec = post_timer.ElapsedSeconds();
  r.total_time_sec = r.stream_time_sec + r.post_time_sec;
  r.avg_update_ms = dataset.size() > 0
                        ? 1e3 * r.stream_time_sec /
                              static_cast<double>(dataset.size())
                        : 0.0;
  r.stored_elements = algo.StoredElements();
  if (!solution.ok()) {
    r.error = solution.status().ToString();
    return r;
  }
  r.ok = true;
  r.diversity = solution.value().diversity;
  r.selected_ids = solution.value().Ids();
  return r;
}

}  // namespace

RunResult RunAlgorithm(const Dataset& dataset, const RunConfig& config) {
  FDM_CHECK(dataset.size() > 0);
  StreamingOptions streaming;
  streaming.epsilon = config.epsilon;
  streaming.d_min = config.bounds.min;
  streaming.d_max = config.bounds.max;

  switch (config.algorithm) {
    case AlgorithmKind::kGmm:
    case AlgorithmKind::kFairSwap:
    case AlgorithmKind::kFairFlow:
    case AlgorithmKind::kFairGmm:
      return RunOffline(dataset, config);
    case AlgorithmKind::kSfdm1:
      return RunStreaming(dataset, config,
                          Sfdm1::Create(config.constraint, dataset.dim(),
                                        dataset.metric_kind(), streaming));
    case AlgorithmKind::kSfdm2:
      return RunStreaming(dataset, config,
                          Sfdm2::Create(config.constraint, dataset.dim(),
                                        dataset.metric_kind(), streaming));
  }
  FDM_CHECK_MSG(false, "unreachable algorithm kind");
  return {};
}

AggregateResult RunRepeated(const Dataset& dataset, RunConfig config,
                            int runs) {
  AggregateResult agg;
  agg.total_runs = runs;
  double diversity_sq_sum = 0.0;
  for (int rep = 1; rep <= runs; ++rep) {
    config.permutation_seed = static_cast<uint64_t>(rep);
    const RunResult r = RunAlgorithm(dataset, config);
    if (!r.ok) {
      if (agg.error.empty()) agg.error = r.error;
      continue;
    }
    ++agg.ok_runs;
    agg.diversity += r.diversity;
    diversity_sq_sum += r.diversity * r.diversity;
    agg.total_time_sec += r.total_time_sec;
    agg.stream_time_sec += r.stream_time_sec;
    agg.post_time_sec += r.post_time_sec;
    agg.avg_update_ms += r.avg_update_ms;
    agg.stored_elements += static_cast<double>(r.stored_elements);
  }
  if (agg.ok_runs > 0) {
    const double d = agg.ok_runs;
    agg.diversity /= d;
    const double variance =
        diversity_sq_sum / d - agg.diversity * agg.diversity;
    agg.diversity_stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
    agg.total_time_sec /= d;
    agg.stream_time_sec /= d;
    agg.post_time_sec /= d;
    agg.avg_update_ms /= d;
    agg.stored_elements /= d;
  }
  return agg;
}

DistanceBounds BoundsForExperiments(const Dataset& dataset) {
  return EstimateDistanceBounds(dataset, /*sample_size=*/1500,
                                /*seed=*/0x5eedb07d5ULL, /*slack=*/2.0);
}

}  // namespace fdm
