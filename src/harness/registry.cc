#include "harness/registry.h"

#include <utility>

#include "baselines/fair_flow.h"
#include "baselines/fair_gmm.h"
#include "baselines/fair_swap.h"
#include "core/gmm.h"
#include "core/sink_snapshot.h"
#include "core/sfdm1.h"
#include "core/sfdm2.h"
#include "core/sharded_stream.h"
#include "core/sliding_window.h"

namespace fdm {

StreamingOptions StreamingOptionsFrom(const RunConfig& config) {
  StreamingOptions streaming;
  streaming.epsilon = config.epsilon;
  streaming.d_min = config.bounds.min;
  streaming.d_max = config.bounds.max;
  streaming.batch_threads = config.batch_threads;
  streaming.solve_threads = config.solve_threads;
  return streaming;
}

namespace {

/// Offline runs derive a deterministic GMM start index from the
/// permutation seed (the streaming runs use the seed for the stream order
/// instead).
size_t StartIndexFor(const Dataset& dataset, const RunConfig& config) {
  return static_cast<size_t>(config.permutation_seed % dataset.size());
}

AlgorithmEntry GmmEntry() {
  AlgorithmEntry entry;
  entry.name = "GMM";
  entry.solve = [](const Dataset& dataset, const RunConfig& config) {
    std::vector<size_t> universe(dataset.size());
    for (size_t i = 0; i < universe.size(); ++i) universe[i] = i;
    const std::vector<size_t> rows =
        GreedyGmm(dataset, universe,
                  static_cast<size_t>(config.constraint.TotalK()), {},
                  StartIndexFor(dataset, config));
    return Result<Solution>(Solution::FromIndices(dataset, rows));
  };
  return entry;
}

AlgorithmEntry FairSwapEntry() {
  AlgorithmEntry entry;
  entry.name = "FairSwap";
  entry.solve = [](const Dataset& dataset, const RunConfig& config) {
    return FairSwap(dataset, config.constraint,
                    StartIndexFor(dataset, config));
  };
  return entry;
}

AlgorithmEntry FairFlowEntry() {
  AlgorithmEntry entry;
  entry.name = "FairFlow";
  entry.solve = [](const Dataset& dataset, const RunConfig& config) {
    FairFlowOptions options;
    options.epsilon = config.epsilon;
    options.start_index = StartIndexFor(dataset, config);
    return FairFlow(dataset, config.constraint, options);
  };
  return entry;
}

AlgorithmEntry FairGmmEntry() {
  AlgorithmEntry entry;
  entry.name = "FairGMM";
  entry.solve = [](const Dataset& dataset, const RunConfig& config) {
    FairGmmOptions options;
    options.start_index = StartIndexFor(dataset, config);
    return FairGmm(dataset, config.constraint, options);
  };
  return entry;
}

AlgorithmEntry Sfdm1Entry() {
  AlgorithmEntry entry;
  entry.name = "SFDM1";
  entry.streaming = true;
  entry.make_sink = [](const Dataset& dataset, const RunConfig& config) {
    return WrapSink(Sfdm1::Create(config.constraint, dataset.dim(),
                                  dataset.metric_kind(),
                                  StreamingOptionsFrom(config)));
  };
  return entry;
}

AlgorithmEntry Sfdm2Entry() {
  AlgorithmEntry entry;
  entry.name = "SFDM2";
  entry.streaming = true;
  entry.make_sink = [](const Dataset& dataset, const RunConfig& config) {
    return WrapSink(Sfdm2::Create(config.constraint, dataset.dim(),
                                  dataset.metric_kind(),
                                  StreamingOptionsFrom(config)));
  };
  return entry;
}

AlgorithmEntry StreamingDmEntry() {
  AlgorithmEntry entry;
  entry.name = "StreamingDM";
  entry.streaming = true;
  entry.make_sink = [](const Dataset& dataset, const RunConfig& config) {
    return WrapSink(StreamingDm::Create(config.constraint.TotalK(),
                                        dataset.dim(), dataset.metric_kind(),
                                        StreamingOptionsFrom(config)));
  };
  return entry;
}

AlgorithmEntry ShardedEntry() {
  AlgorithmEntry entry;
  entry.name = "ShardedDM";
  entry.streaming = true;
  entry.make_sink = [](const Dataset& dataset, const RunConfig& config) {
    ShardedStreamingOptions sharding;
    sharding.num_shards = config.num_shards;
    sharding.batch_threads = config.batch_threads;
    sharding.solve_threads = config.solve_threads;
    return WrapSink(ShardedStreamingDm::Create(
        config.constraint.TotalK(), dataset.dim(), dataset.metric_kind(),
        StreamingOptionsFrom(config), sharding));
  };
  return entry;
}

AlgorithmEntry SlidingWindowEntry() {
  AlgorithmEntry entry;
  entry.name = "SlidingWindowDM";
  entry.streaming = true;
  entry.make_sink = [](const Dataset& dataset, const RunConfig& config) {
    // Window 0 covers the whole dataset, making the windowed run directly
    // comparable to the one-pass algorithms on the same stream.
    const int64_t window =
        config.window_size > 0 ? config.window_size
                               : static_cast<int64_t>(dataset.size());
    int64_t checkpoints = config.window_checkpoints;
    if (checkpoints < 1) checkpoints = 1;
    if (checkpoints > window) checkpoints = window;
    const int k = config.constraint.TotalK();
    const size_t dim = dataset.dim();
    const MetricKind metric = dataset.metric_kind();
    const StreamingOptions streaming = StreamingOptionsFrom(config);
    return WrapSink(SlidingWindow<StreamingDm>::Create(
        window, checkpoints, [k, dim, metric, streaming] {
          return StreamingDm::Create(k, dim, metric, streaming);
        }));
  };
  return entry;
}

}  // namespace

AlgorithmRegistry::AlgorithmRegistry() {
  Register(AlgorithmKind::kGmm, GmmEntry());
  Register(AlgorithmKind::kFairSwap, FairSwapEntry());
  Register(AlgorithmKind::kFairFlow, FairFlowEntry());
  Register(AlgorithmKind::kFairGmm, FairGmmEntry());
  Register(AlgorithmKind::kSfdm1, Sfdm1Entry());
  Register(AlgorithmKind::kSfdm2, Sfdm2Entry());
  Register(AlgorithmKind::kStreamingDm, StreamingDmEntry());
  Register(AlgorithmKind::kSharded, ShardedEntry());
  Register(AlgorithmKind::kSlidingWindow, SlidingWindowEntry());
}

AlgorithmRegistry& AlgorithmRegistry::Instance() {
  static AlgorithmRegistry registry;
  return registry;
}

void AlgorithmRegistry::Register(AlgorithmKind kind, AlgorithmEntry entry) {
  entries_[kind] = std::move(entry);
}

const AlgorithmEntry* AlgorithmRegistry::Find(AlgorithmKind kind) const {
  const auto it = entries_.find(kind);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<AlgorithmKind> AlgorithmRegistry::Kinds() const {
  std::vector<AlgorithmKind> kinds;
  kinds.reserve(entries_.size());
  for (const auto& [kind, entry] : entries_) kinds.push_back(kind);
  return kinds;
}

}  // namespace fdm
