#ifndef FDM_HARNESS_TABLE_H_
#define FDM_HARNESS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace fdm {

/// Aligned fixed-width console table; every bench binary prints its
/// paper-style rows through this.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Writes the aligned table (header, rule, rows).
  void Print(std::ostream& out) const;

  /// Writes the same content as CSV (no alignment padding).
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Creates `dir` (and parents) if needed; returns false on failure.
/// Benches write their CSVs under `results/`.
bool EnsureDirectory(const std::string& dir);

}  // namespace fdm

#endif  // FDM_HARNESS_TABLE_H_
