#include "harness/table.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/check.h"
#include "util/stringutil.h"

namespace fdm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  FDM_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Left-align the first column (labels), right-align the rest
      // (numbers).
      out << (c == 0 ? PadRight(cells[c], widths[c])
                     : PadLeft(cells[c], widths[c]));
    }
    out << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (const size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << Join(headers_, ",") << "\n";
  for (const auto& row : rows_) out << Join(row, ",") << "\n";
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

bool EnsureDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return !ec;
}

}  // namespace fdm
