#ifndef FDM_UTIL_BINARY_IO_H_
#define FDM_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace fdm {

/// FNV-1a 64-bit hash — the checksum behind snapshot files and WAL records.
/// Not cryptographic; it detects torn writes and bit rot, which is all the
/// durability layer needs, and it is dependency-free.
uint64_t Fnv1a64(const void* data, size_t len,
                 uint64_t seed = 0xcbf29ce484222325ull);

/// Reads a whole file into memory (binary). Shared by the snapshot reader
/// and the WAL segment scanner.
Result<std::string> ReadFileToString(const std::string& path);

/// Buffered writer for the versioned, checksummed snapshot format.
///
/// A snapshot is framed as
///
///   magic "FDMSNAP1" (8 bytes) | format version u32 | payload size u64 |
///   payload | FNV-1a 64 of payload
///
/// with every scalar little-endian. The writer accumulates the payload in
/// memory (sink state is tiny — coresets of O(k·log∆/ε) points — which is
/// what makes checkpointing essentially free) and frames it on
/// `WriteFile`/`Serialize`. `WriteFile` is atomic: it writes to a temp file
/// in the target directory, fsyncs, and renames over the destination, so a
/// crash mid-snapshot never clobbers the previous good snapshot.
class SnapshotWriter {
 public:
  static constexpr char kMagic[8] = {'F', 'D', 'M', 'S', 'N', 'A', 'P', '1'};
  /// Bumped whenever any sink's snapshot payload layout changes (v2 added
  /// the per-sink state_version field), so an old-format file is rejected
  /// cleanly at the header instead of being silently misparsed field by
  /// field.
  static constexpr uint32_t kFormatVersion = 2;

  void WriteU8(uint8_t v) { Raw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteU32(uint32_t v) { Raw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Raw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { Raw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Raw(&v, sizeof(v)); }
  void WriteDouble(double v) { Raw(&v, sizeof(v)); }

  /// Length-prefixed string (u64 length + bytes).
  void WriteString(std::string_view s) {
    WriteU64(s.size());
    Raw(s.data(), s.size());
  }

  /// Length-prefixed spans, element-wise little-endian.
  void WriteDoubleSpan(std::span<const double> v) {
    WriteU64(v.size());
    Raw(v.data(), v.size() * sizeof(double));
  }
  void WriteI64Span(std::span<const int64_t> v) {
    WriteU64(v.size());
    Raw(v.data(), v.size() * sizeof(int64_t));
  }
  void WriteI32Span(std::span<const int32_t> v) {
    WriteU64(v.size());
    Raw(v.data(), v.size() * sizeof(int32_t));
  }

  /// Unframed payload size so far.
  size_t PayloadBytes() const { return payload_.size(); }

  /// The complete framed snapshot (header + payload + checksum).
  std::string Serialize() const;

  /// Atomically writes the framed snapshot to `path` (temp file + fsync +
  /// rename).
  Status WriteFile(const std::string& path) const;

 private:
  void Raw(const void* data, size_t len) {
    if (len == 0) return;  // empty spans legitimately pass data() == null
    const char* bytes = static_cast<const char*>(data);
    payload_.insert(payload_.end(), bytes, bytes + len);
  }

  std::string payload_;
};

/// Bounds-checked reader over a framed snapshot with a sticky error: the
/// first malformed read latches a non-OK `status()` and every later read
/// returns a zero value, so deserialization code reads linearly and checks
/// once (plus wherever a value gates a loop or allocation).
class SnapshotReader {
 public:
  /// Verifies magic, version, payload size, and checksum.
  static Result<SnapshotReader> FromBytes(std::string framed);
  static Result<SnapshotReader> FromFile(const std::string& path);

  uint8_t ReadU8() { return ReadScalar<uint8_t>(); }
  bool ReadBool() { return ReadU8() != 0; }
  uint32_t ReadU32() { return ReadScalar<uint32_t>(); }
  uint64_t ReadU64() { return ReadScalar<uint64_t>(); }
  int32_t ReadI32() { return ReadScalar<int32_t>(); }
  int64_t ReadI64() { return ReadScalar<int64_t>(); }
  double ReadDouble() { return ReadScalar<double>(); }

  std::string ReadString();
  std::vector<double> ReadDoubleVec();
  std::vector<int64_t> ReadI64Vec();
  std::vector<int32_t> ReadI32Vec();

  /// Reads the string at the cursor without consuming it — the snapshot
  /// dispatcher peeks the algorithm type tag, then hands the reader to the
  /// matching `Restore`, which consumes (and re-verifies) the tag itself.
  std::string PeekString();

  /// OK iff every read so far was in-bounds.
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Marks the reader failed (used by deserializers that spot a semantic
  /// inconsistency, e.g. a dimension mismatch).
  void Fail(std::string message) {
    if (status_.ok()) {
      status_ = Status::IoError("snapshot corrupt: " + std::move(message));
    }
  }

  /// Bytes of payload not yet consumed.
  size_t Remaining() const { return payload_.size() - offset_; }

 private:
  explicit SnapshotReader(std::string payload)
      : payload_(std::move(payload)) {}

  template <typename T>
  T ReadScalar() {
    T v{};
    if (!status_.ok()) return v;
    if (offset_ + sizeof(T) > payload_.size()) {
      Fail("read past end of payload");
      return v;
    }
    std::memcpy(&v, payload_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> ReadVec();

  std::string payload_;
  size_t offset_ = 0;
  Status status_;
};

}  // namespace fdm

#endif  // FDM_UTIL_BINARY_IO_H_
