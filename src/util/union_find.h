#ifndef FDM_UTIL_UNION_FIND_H_
#define FDM_UTIL_UNION_FIND_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace fdm {

/// Disjoint-set forest with union by size and path halving.
///
/// Used by the threshold clustering step of SFDM2 (Algorithm 3, lines 13–16)
/// and by the FairFlow baseline to form single-linkage clusters.
class UnionFind {
 public:
  /// Creates `n` singleton sets labelled `0..n-1`.
  explicit UnionFind(int n)
      : parent_(static_cast<size_t>(n)), size_(static_cast<size_t>(n), 1),
        num_sets_(n) {
    FDM_CHECK(n >= 0);
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of the set containing `x`.
  int Find(int x) {
    FDM_DCHECK(x >= 0 && x < static_cast<int>(parent_.size()));
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  /// Merges the sets containing `a` and `b`.
  /// Returns true iff they were previously distinct.
  bool Union(int a, int b) {
    int ra = Find(a);
    int rb = Find(b);
    if (ra == rb) return false;
    if (size_[static_cast<size_t>(ra)] < size_[static_cast<size_t>(rb)]) {
      std::swap(ra, rb);
    }
    parent_[static_cast<size_t>(rb)] = ra;
    size_[static_cast<size_t>(ra)] += size_[static_cast<size_t>(rb)];
    --num_sets_;
    return true;
  }

  /// True iff `a` and `b` are in the same set.
  bool Connected(int a, int b) { return Find(a) == Find(b); }

  /// Number of elements in the set containing `x`.
  int SizeOf(int x) { return size_[static_cast<size_t>(Find(x))]; }

  /// Current number of disjoint sets.
  int num_sets() const { return num_sets_; }

  /// Total number of elements.
  int num_elements() const { return static_cast<int>(parent_.size()); }

  /// Dense relabelling: returns a vector `label` with `label[x]` in
  /// `[0, num_sets())`, equal labels iff same set. Labels are assigned in
  /// order of first appearance, so the result is deterministic.
  std::vector<int> DenseLabels() {
    std::vector<int> label(parent_.size(), -1);
    std::vector<int> root_label(parent_.size(), -1);
    int next = 0;
    for (int x = 0; x < num_elements(); ++x) {
      const int r = Find(x);
      if (root_label[static_cast<size_t>(r)] < 0) {
        root_label[static_cast<size_t>(r)] = next++;
      }
      label[static_cast<size_t>(x)] = root_label[static_cast<size_t>(r)];
    }
    return label;
  }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int num_sets_;
};

}  // namespace fdm

#endif  // FDM_UTIL_UNION_FIND_H_
