#ifndef FDM_UTIL_STATUS_H_
#define FDM_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace fdm {

/// Error category for a failed operation.
///
/// The library does not throw exceptions across its public API; recoverable
/// failures are reported via `Status` (or `Result<T>` when a value is
/// produced), in the style of RocksDB's `rocksdb::Status`.
enum class StatusCode {
  kOk = 0,
  /// An argument violates the documented contract (e.g. `k <= 0`).
  kInvalidArgument,
  /// The input cannot yield a valid solution (e.g. a group has fewer
  /// elements than its quota).
  kInfeasible,
  /// A resource (file, directory) could not be accessed.
  kIoError,
  /// The operation is valid but unsupported in this configuration
  /// (e.g. FairSwap with `m != 2`).
  kUnsupported,
  /// An internal invariant failed; indicates a library bug.
  kInternal,
};

/// Human-readable name of a `StatusCode` (e.g. `"InvalidArgument"`).
std::string_view StatusCodeName(StatusCode code);

/// Outcome of an operation that produces no value.
///
/// A default-constructed `Status` is OK. Failed statuses carry a code and a
/// message. `Status` is cheap to copy for OK values and to move always.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, mirroring the `StatusCode` values.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// `"OK"` or `"<CodeName>: <message>"`.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`.
///
/// Mirrors `absl::StatusOr<T>`: construction from `T` yields an OK result,
/// construction from a non-OK `Status` yields an error. Accessing `value()`
/// on an error aborts (programmer error), so callers must test `ok()` first.
template <typename T>
class Result {
 public:
  /// Constructs an OK result holding `value`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; `Status::Ok()` if the result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  /// The held value. Must only be called when `ok()`.
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace fdm

#endif  // FDM_UTIL_STATUS_H_
