#ifndef FDM_UTIL_CHECK_H_
#define FDM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checking for programmer errors.
///
/// `FDM_CHECK` is always on (benchmark code paths it guards are cold);
/// `FDM_DCHECK` compiles away in release builds and is used on hot paths.
/// Failures print the condition and location, then abort — they indicate a
/// bug in the library, never a data-dependent condition (those return
/// `fdm::Status`).

#define FDM_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FDM_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define FDM_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FDM_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   msg, __FILE__, __LINE__);                              \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define FDM_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define FDM_DCHECK(cond) FDM_CHECK(cond)
#endif

#endif  // FDM_UTIL_CHECK_H_
