#include "util/argparse.h"

#include <cstdlib>
#include <cstring>

namespace fdm {

ArgParser::ArgParser(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "";
    }
  }
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

int64_t ArgParser::GetInt(const std::string& name, int64_t def) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : def;
}

double ArgParser::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : def;
}

bool ArgParser::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return def;
}

}  // namespace fdm
