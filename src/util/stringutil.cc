#include "util/stringutil.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace fdm {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatCount(double value) {
  const char* suffix = "";
  double v = value;
  if (std::fabs(v) >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  char buf[64];
  if (suffix[0] == '\0') {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", v, suffix);
  }
  return buf;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string PadLeft(std::string_view text, size_t width) {
  std::string out;
  if (text.size() < width) out.assign(width - text.size(), ' ');
  out += text;
  return out;
}

std::string PadRight(std::string_view text, size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace fdm
