#ifndef FDM_UTIL_TIMER_H_
#define FDM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fdm {

/// Monotonic wall-clock stopwatch used by the experiment harness.
///
/// The paper reports (a) average update time per stream element and
/// (b) total/post-processing wall time; both are derived from this timer.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last `Reset()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last `Reset()`.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates a duration across many disjoint timed sections
/// (e.g. total stream-processing time summed over elements).
class AccumulatingTimer {
 public:
  void Start() { timer_.Reset(); running_ = true; }

  /// Stops the current section and adds it to the total.
  void Stop() {
    if (running_) {
      total_seconds_ += timer_.ElapsedSeconds();
      running_ = false;
    }
  }

  double total_seconds() const { return total_seconds_; }

 private:
  Timer timer_;
  double total_seconds_ = 0.0;
  bool running_ = false;
};

}  // namespace fdm

#endif  // FDM_UTIL_TIMER_H_
