#ifndef FDM_UTIL_ALIGNED_H_
#define FDM_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>

namespace fdm {

/// Minimal over-aligning allocator for `std::vector`.
///
/// The SIMD distance kernels (`geo/simd/`) load whole 64-byte lane rows of
/// the point-block storage with aligned vector loads; `PointBuffer` keeps
/// that storage in `std::vector<double, AlignedAllocator<double>>` so every
/// reallocation preserves the alignment contract. 64 bytes is one cache
/// line and one 8-lane row of doubles — the row stride of the block layout
/// — so a 64-byte-aligned base makes *every* row aligned.
template <typename T, std::size_t Alignment = 64>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two and at least alignof(T)");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace fdm

#endif  // FDM_UTIL_ALIGNED_H_
