#include "util/status.h"

namespace fdm {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace fdm
