#include "util/binary_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace fdm {

uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string SnapshotWriter::Serialize() const {
  std::string framed;
  framed.reserve(sizeof(kMagic) + sizeof(uint32_t) + sizeof(uint64_t) +
                 payload_.size() + sizeof(uint64_t));
  framed.append(kMagic, sizeof(kMagic));
  const uint32_t version = kFormatVersion;
  framed.append(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t size = payload_.size();
  framed.append(reinterpret_cast<const char*>(&size), sizeof(size));
  framed.append(payload_);
  const uint64_t checksum = Fnv1a64(payload_.data(), payload_.size());
  framed.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return framed;
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  const std::string framed = Serialize();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for write: " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status error =
          Status::IoError("write failed: " + tmp + ": " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return error;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status error =
        Status::IoError("fsync failed: " + tmp + ": " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return error;
  }
  if (::close(fd) != 0) {
    return Status::IoError("close failed: " + tmp + ": " +
                           std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status error = Status::IoError("rename failed: " + tmp + " -> " +
                                         path + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());  // don't let retries accumulate stale temps
    return error;
  }
  // fsync the parent directory so the rename itself is durable — callers
  // (e.g. snapshot-then-prune-WAL) order destructive steps after this
  // return, which is only sound if the new directory entry survives a
  // power failure.
  const size_t slash = path.find_last_of('/');
  const std::string parent = slash == std::string::npos
                                 ? std::string(".")
                                 : path.substr(0, slash);
  const int dir_fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IoError("cannot open dir for fsync: " + parent + ": " +
                           std::strerror(errno));
  }
  if (::fsync(dir_fd) != 0) {
    const Status error = Status::IoError("dir fsync failed: " + parent +
                                         ": " + std::strerror(errno));
    ::close(dir_fd);
    return error;
  }
  ::close(dir_fd);
  return Status::Ok();
}

Result<SnapshotReader> SnapshotReader::FromBytes(std::string framed) {
  constexpr size_t kHeader =
      sizeof(SnapshotWriter::kMagic) + sizeof(uint32_t) + sizeof(uint64_t);
  if (framed.size() < kHeader + sizeof(uint64_t)) {
    return Status::IoError("snapshot truncated: " +
                           std::to_string(framed.size()) + " bytes");
  }
  if (std::memcmp(framed.data(), SnapshotWriter::kMagic,
                  sizeof(SnapshotWriter::kMagic)) != 0) {
    return Status::IoError("snapshot magic mismatch (not a snapshot file)");
  }
  uint32_t version = 0;
  std::memcpy(&version, framed.data() + sizeof(SnapshotWriter::kMagic),
              sizeof(version));
  if (version != SnapshotWriter::kFormatVersion) {
    return Status::Unsupported("snapshot format version " +
                               std::to_string(version) + " (reader supports " +
                               std::to_string(SnapshotWriter::kFormatVersion) +
                               ")");
  }
  uint64_t size = 0;
  std::memcpy(&size, framed.data() + sizeof(SnapshotWriter::kMagic) +
                         sizeof(version),
              sizeof(size));
  // Compare against the actual payload room (already known >= 0 from the
  // length check above) — `kHeader + size` could wrap for a corrupt size.
  if (size != framed.size() - kHeader - sizeof(uint64_t)) {
    return Status::IoError("snapshot payload size mismatch: header says " +
                           std::to_string(size) + ", file has " +
                           std::to_string(framed.size() - kHeader -
                                          sizeof(uint64_t)));
  }
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, framed.data() + kHeader + size,
              sizeof(stored_checksum));
  const uint64_t computed = Fnv1a64(framed.data() + kHeader, size);
  if (stored_checksum != computed) {
    return Status::IoError("snapshot checksum mismatch");
  }
  return SnapshotReader(framed.substr(kHeader, size));
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return buffer.str();
}

Result<SnapshotReader> SnapshotReader::FromFile(const std::string& path) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  auto reader = FromBytes(std::move(bytes.value()));
  if (!reader.ok()) {
    return Status(reader.status().code(),
                  reader.status().message() + " (" + path + ")");
  }
  return reader;
}

std::string SnapshotReader::ReadString() {
  const uint64_t len = ReadU64();
  if (!status_.ok()) return {};
  if (len > payload_.size() - offset_) {
    Fail("string length " + std::to_string(len) + " past end of payload");
    return {};
  }
  std::string s(payload_.data() + offset_, len);
  offset_ += len;
  return s;
}

std::string SnapshotReader::PeekString() {
  const size_t saved_offset = offset_;
  const Status saved_status = status_;
  std::string s = ReadString();
  offset_ = saved_offset;
  status_ = saved_status;
  return s;
}

template <typename T>
std::vector<T> SnapshotReader::ReadVec() {
  const uint64_t count = ReadU64();
  if (!status_.ok()) return {};
  if (count > (payload_.size() - offset_) / sizeof(T)) {
    Fail("vector of " + std::to_string(count) + " elements past end");
    return {};
  }
  std::vector<T> v(count);
  if (count != 0) {  // v.data() may be null for an empty vector
    std::memcpy(v.data(), payload_.data() + offset_, count * sizeof(T));
    offset_ += count * sizeof(T);
  }
  return v;
}

std::vector<double> SnapshotReader::ReadDoubleVec() {
  return ReadVec<double>();
}
std::vector<int64_t> SnapshotReader::ReadI64Vec() { return ReadVec<int64_t>(); }
std::vector<int32_t> SnapshotReader::ReadI32Vec() { return ReadVec<int32_t>(); }

}  // namespace fdm
