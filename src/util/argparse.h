#ifndef FDM_UTIL_ARGPARSE_H_
#define FDM_UTIL_ARGPARSE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fdm {

/// Minimal `--flag[=value]` command-line parser for bench and example
/// binaries.
///
/// Every bench binary must run argument-free (the reproduction driver runs
/// `for b in build/bench/*; do $b; done`), so all flags have defaults and
/// unknown flags are reported but non-fatal.
class ArgParser {
 public:
  /// Parses `argv`. Accepts `--name=value`, `--name value`, and bare
  /// `--name` (boolean true).
  ArgParser(int argc, char** argv);

  /// True iff `--name` was passed (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of `--name`, or `def` if absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Integer value of `--name`, or `def` if absent/unparsable.
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Double value of `--name`, or `def` if absent/unparsable.
  double GetDouble(const std::string& name, double def) const;

  /// Boolean value: `--name` alone or `--name=true|1|yes` is true;
  /// `--name=false|0|no` is false; absent yields `def`.
  bool GetBool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Name of the binary (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fdm

#endif  // FDM_UTIL_ARGPARSE_H_
