#ifndef FDM_UTIL_THREAD_POOL_H_
#define FDM_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

namespace fdm {

/// A small reusable fork-join thread pool.
///
/// Built for the batched ingestion paths: the guess-ladder rungs (and the
/// shards of the sharded driver) are independent, so `ObserveBatch`
/// partitions them over a pool and joins before returning. The pool is
/// fork-join only — one `ParallelFor` runs at a time per pool (concurrent
/// calls serialize on an internal mutex) — which keeps it tiny and is all
/// the ingestion engine needs.
///
/// Workers idle on a condition variable between batches, so a pool can be
/// kept alive across millions of `ObserveBatch` calls without burning CPU.
class ThreadPool {
 public:
  /// `num_threads` is the total parallelism including the calling thread;
  /// the pool spawns `num_threads - 1` workers. `0` means one thread per
  /// hardware thread.
  explicit ThreadPool(size_t num_threads = 0) {
    if (num_threads == 0) num_threads = DefaultThreads();
    const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
    workers_.reserve(workers);
    for (size_t t = 0; t < workers; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  /// Total parallelism (workers + the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs `fn(0) … fn(n-1)`, distributing indices dynamically over the
  /// workers and the calling thread; returns once every call finished.
  /// `fn` must not throw. Distinct indices may run concurrently — callers
  /// guarantee they touch disjoint state.
  ///
  /// Completion is counted per *task*, not per worker, so only as many
  /// workers as there are tasks are woken — a pool sized for the machine
  /// stays cheap when a batch has few rungs/shards to hand out.
  ///
  /// `max_parallelism` caps total concurrency for this call (caller
  /// included) below the pool size; `0` means the whole pool. The cap is
  /// hard: each job carries a worker-slot budget, so a stale worker that
  /// wakes late cannot push the join count past it. This lets many owners
  /// share one machine-sized pool while each runs at its own knob.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   size_t max_parallelism = 0) {
    if (n == 0) return;
    const size_t width =
        max_parallelism == 0
            ? workers_.size() + 1
            : std::min(max_parallelism, workers_.size() + 1);
    if (workers_.empty() || n == 1 || width == 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::lock_guard<std::mutex> serialize(run_mu_);
    // Each job owns its counters (shared with any worker that picks it
    // up), so a stale worker waking late — or looping one extra time
    // after this job's tasks are exhausted — saturates on the OLD job's
    // `next` and can never claim an index of a newer job or touch its
    // (by then destroyed) closure.
    auto job = std::make_shared<Job>(fn, n, width - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      ++generation_;
    }
    const size_t to_wake = std::min({workers_.size(), n - 1, width - 1});
    if (to_wake >= workers_.size()) {
      wake_.notify_all();
    } else {
      for (size_t w = 0; w < to_wake; ++w) wake_.notify_one();
    }
    Drain(*job);
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&job] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
  }

  static size_t DefaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

 private:
  struct Job {
    Job(const std::function<void(size_t)>& fn_in, size_t limit_in,
        size_t worker_slots_in)
        : fn(&fn_in),
          limit(limit_in),
          remaining(limit_in),
          worker_slots(static_cast<int64_t>(worker_slots_in)) {}
    const std::function<void(size_t)>* fn;
    size_t limit;
    std::atomic<size_t> next{0};
    std::atomic<size_t> remaining;
    // How many workers may still join (the caller is not counted). Signed:
    // over-woken workers decrement past zero and simply bow out.
    std::atomic<int64_t> worker_slots;
  };

  void Drain(Job& job) {
    for (size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
         i < job.limit;
         i = job.next.fetch_add(1, std::memory_order_relaxed)) {
      (*job.fn)(i);
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task: sync with the caller's wait (empty critical section
        // prevents the notify racing past the predicate check), then wake.
        { std::lock_guard<std::mutex> lock(mu_); }
        done_.notify_one();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;  // null when the job already finished (late wakeup)
      }
      if (job != nullptr &&
          job->worker_slots.fetch_sub(1, std::memory_order_relaxed) > 0) {
        Drain(*job);
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex run_mu_;  // serializes ParallelFor calls (fork-join contract)
  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

/// The `batch_threads` knob shared by the streaming sinks, resolved into a
/// lazily-created pool: `1` = sequential (no pool, no threads spawned —
/// the default), `0` = one thread per hardware thread, `n > 1` = exactly
/// `n` threads. Copyable; copies share the pool (safe: fork-join calls
/// serialize).
class BatchParallelism {
 public:
  explicit BatchParallelism(int batch_threads = 1)
      : batch_threads_(batch_threads) {}

  /// Runs `fn(0) … fn(n-1)`, in parallel when the knob asks for it.
  void Run(size_t n, const std::function<void(size_t)>& fn) {
    if (batch_threads_ == 1 || n <= 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    if (pool_ == nullptr) {
      pool_ = std::make_shared<ThreadPool>(
          batch_threads_ <= 0 ? 0 : static_cast<size_t>(batch_threads_));
    }
    pool_->ParallelFor(n, fn);
  }

  int batch_threads() const { return batch_threads_; }

 private:
  int batch_threads_ = 1;
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace fdm

#endif  // FDM_UTIL_THREAD_POOL_H_
