#ifndef FDM_UTIL_STRINGUTIL_H_
#define FDM_UTIL_STRINGUTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace fdm {

/// Splits `text` on `sep`, keeping empty fields (CSV semantics).
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Fixed-precision decimal formatting (e.g. `FormatDouble(3.14159, 3)` ->
/// `"3.142"`). Unlike `std::to_string`, precision is caller-controlled.
std::string FormatDouble(double value, int precision);

/// Human-friendly engineering formatting for counts: `1234567` -> `"1.23M"`.
std::string FormatCount(double value);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Left-pads (`PadLeft`) or right-pads (`PadRight`) with spaces to `width`.
std::string PadLeft(std::string_view text, size_t width);
std::string PadRight(std::string_view text, size_t width);

}  // namespace fdm

#endif  // FDM_UTIL_STRINGUTIL_H_
