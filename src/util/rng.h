#ifndef FDM_UTIL_RNG_H_
#define FDM_UTIL_RNG_H_

#include <cstdint>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace fdm {

/// Deterministic 64-bit pseudo-random generator (xoshiro256++ seeded via
/// SplitMix64).
///
/// Every randomized component in the library takes an explicit seed and
/// derives its stream from this generator, so runs are reproducible
/// bit-for-bit across platforms — `std::mt19937` + `std::*_distribution`
/// are deliberately avoided because distribution implementations differ
/// across standard libraries.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in `[0, bound)`. `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound) {
    FDM_DCHECK(bound > 0);
    while (true) {
      uint64_t x = NextUint64();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t low = static_cast<uint64_t>(m);
      if (low >= bound || low >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in `[lo, hi]` inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    FDM_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in `[0, 1)` with 53 bits of entropy.
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in `[lo, hi)`.
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal deviate (Marsaglia polar method).
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = NextDouble() * 2.0 - 1.0;
      v = NextDouble() * 2.0 - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

  /// Gamma(shape, 1) deviate via Marsaglia–Tsang; used for Dirichlet draws.
  /// `shape` must be positive.
  double NextGamma(double shape) {
    FDM_DCHECK(shape > 0.0);
    if (shape < 1.0) {
      // Boost via Gamma(shape + 1) * U^(1/shape).
      const double g = NextGamma(shape + 1.0);
      const double u = NextDouble();
      return g * std::pow(u > 0 ? u : 1e-300, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
      double x, v;
      do {
        x = NextGaussian();
        v = 1.0 + c * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = NextDouble();
      if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v;
      if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v;
      }
    }
  }

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// A fresh generator seeded from this one; lets one master seed drive
  /// several independent streams (e.g. per-dataset, per-permutation).
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace fdm

#endif  // FDM_UTIL_RNG_H_
