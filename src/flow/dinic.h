#ifndef FDM_FLOW_DINIC_H_
#define FDM_FLOW_DINIC_H_

#include <cstdint>
#include <vector>

namespace fdm {

/// Dinic's maximum-flow algorithm on integer capacities.
///
/// Substrate for the FairFlow baseline ([32] solves the fair selection as a
/// flow problem: source → group nodes (capacity k_i) → element nodes →
/// cluster nodes (capacity 1) → sink) and a cross-check oracle for the
/// matroid-intersection tests (max common independent set of two partition
/// matroids equals the max flow of exactly that network).
///
/// Complexity O(V^2 E) in general, O(E sqrt(V)) on unit networks — the
/// FairFlow graphs here have ≤ a few thousand nodes.
class Dinic {
 public:
  /// Creates a network with `num_nodes` nodes and no edges.
  explicit Dinic(int num_nodes);

  /// Adds a directed edge `from → to` with `capacity ≥ 0`.
  /// Returns an edge handle usable with `FlowOn`.
  int AddEdge(int from, int to, int64_t capacity);

  /// Computes the maximum flow from `source` to `sink`.
  /// May be called once per network state; `FlowOn` is valid afterwards.
  int64_t MaxFlow(int source, int sink);

  /// Flow routed on the edge handle returned by `AddEdge`.
  int64_t FlowOn(int edge_handle) const;

  int num_nodes() const { return static_cast<int>(graph_.size()); }

 private:
  struct Edge {
    int to;
    int64_t capacity;  // residual capacity
    int rev;           // index of the reverse edge in graph_[to]
    int64_t original;  // original capacity (for FlowOn)
  };

  bool Bfs(int source, int sink);
  int64_t Dfs(int v, int sink, int64_t pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<int> iter_;
  std::vector<std::pair<int, int>> handles_;  // (node, index) per handle
};

}  // namespace fdm

#endif  // FDM_FLOW_DINIC_H_
