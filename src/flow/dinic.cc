#include "flow/dinic.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.h"

namespace fdm {

Dinic::Dinic(int num_nodes) : graph_(static_cast<size_t>(num_nodes)) {
  FDM_CHECK(num_nodes >= 0);
}

int Dinic::AddEdge(int from, int to, int64_t capacity) {
  FDM_CHECK(from >= 0 && from < num_nodes());
  FDM_CHECK(to >= 0 && to < num_nodes());
  FDM_CHECK(capacity >= 0);
  auto& fwd_list = graph_[static_cast<size_t>(from)];
  auto& rev_list = graph_[static_cast<size_t>(to)];
  const int fwd_index = static_cast<int>(fwd_list.size());
  const int rev_index =
      static_cast<int>(rev_list.size()) + (from == to ? 1 : 0);
  fwd_list.push_back(Edge{to, capacity, rev_index, capacity});
  graph_[static_cast<size_t>(to)].push_back(Edge{from, 0, fwd_index, 0});
  handles_.emplace_back(from, fwd_index);
  return static_cast<int>(handles_.size()) - 1;
}

bool Dinic::Bfs(int source, int sink) {
  level_.assign(graph_.size(), -1);
  std::queue<int> queue;
  level_[static_cast<size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[static_cast<size_t>(v)]) {
      if (e.capacity > 0 && level_[static_cast<size_t>(e.to)] < 0) {
        level_[static_cast<size_t>(e.to)] = level_[static_cast<size_t>(v)] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[static_cast<size_t>(sink)] >= 0;
}

int64_t Dinic::Dfs(int v, int sink, int64_t pushed) {
  if (v == sink) return pushed;
  for (int& i = iter_[static_cast<size_t>(v)];
       i < static_cast<int>(graph_[static_cast<size_t>(v)].size()); ++i) {
    Edge& e = graph_[static_cast<size_t>(v)][static_cast<size_t>(i)];
    if (e.capacity <= 0 ||
        level_[static_cast<size_t>(e.to)] !=
            level_[static_cast<size_t>(v)] + 1) {
      continue;
    }
    const int64_t got = Dfs(e.to, sink, std::min(pushed, e.capacity));
    if (got > 0) {
      e.capacity -= got;
      graph_[static_cast<size_t>(e.to)][static_cast<size_t>(e.rev)].capacity +=
          got;
      return got;
    }
  }
  return 0;
}

int64_t Dinic::MaxFlow(int source, int sink) {
  FDM_CHECK(source >= 0 && source < num_nodes());
  FDM_CHECK(sink >= 0 && sink < num_nodes());
  FDM_CHECK(source != sink);
  int64_t flow = 0;
  while (Bfs(source, sink)) {
    iter_.assign(graph_.size(), 0);
    while (true) {
      const int64_t got =
          Dfs(source, sink, std::numeric_limits<int64_t>::max());
      if (got == 0) break;
      flow += got;
    }
  }
  return flow;
}

int64_t Dinic::FlowOn(int edge_handle) const {
  FDM_CHECK(edge_handle >= 0 &&
            edge_handle < static_cast<int>(handles_.size()));
  const auto [node, index] = handles_[static_cast<size_t>(edge_handle)];
  const Edge& e = graph_[static_cast<size_t>(node)][static_cast<size_t>(index)];
  return e.original - e.capacity;
}

}  // namespace fdm
