#ifndef FDM_FDM_H_
#define FDM_FDM_H_

/// Umbrella header for the fdm library — streaming algorithms for
/// diversity maximization with fairness constraints (Wang, Fabbri,
/// Mathioudakis; ICDE 2022).
///
/// Typical applications only need:
///   * a fairness constraint   — core/fairness.h
///   * a streaming algorithm   — core/sfdm1.h (m = 2), core/sfdm2.h (any m),
///                               core/streaming_dm.h (unconstrained)
///   * distance bounds         — data/dataset.h (EstimateDistanceBounds)
///
/// The offline baselines (baselines/*.h), the sliding-window adapter
/// (core/sliding_window.h), the durable serving layer (service/*.h —
/// snapshots, write-ahead log, session manager), and the experiment
/// harness (harness/*.h) are included here for convenience; fine-grained
/// includes compile faster.

#include "core/clustering.h"        // IWYU pragma: export
#include "core/composable_coreset.h"  // IWYU pragma: export
#include "core/diversity.h"         // IWYU pragma: export
#include "core/fairness.h"          // IWYU pragma: export
#include "core/gmm.h"               // IWYU pragma: export
#include "core/guess_ladder.h"      // IWYU pragma: export
#include "core/matroid.h"           // IWYU pragma: export
#include "core/matroid_intersection.h"  // IWYU pragma: export
#include "core/adaptive_streaming_dm.h"  // IWYU pragma: export
#include "core/sfdm1.h"             // IWYU pragma: export
#include "core/sfdm2.h"             // IWYU pragma: export
#include "core/sharded_stream.h"    // IWYU pragma: export
#include "core/sliding_window.h"    // IWYU pragma: export
#include "core/sink_snapshot.h"     // IWYU pragma: export
#include "core/solution.h"          // IWYU pragma: export
#include "core/solve_cache.h"       // IWYU pragma: export
#include "core/stream_sink.h"       // IWYU pragma: export
#include "core/streaming_dm.h"      // IWYU pragma: export
#include "core/validate.h"          // IWYU pragma: export
#include "replica/replica_manager.h"  // IWYU pragma: export
#include "replica/replica_session.h"  // IWYU pragma: export
#include "replica/replication_source.h"  // IWYU pragma: export
#include "service/durable_session.h"  // IWYU pragma: export
#include "service/session_layout.h"  // IWYU pragma: export
#include "service/session_manager.h"  // IWYU pragma: export
#include "service/sink_spec.h"      // IWYU pragma: export
#include "service/wal.h"            // IWYU pragma: export
#include "baselines/fair_flow.h"    // IWYU pragma: export
#include "baselines/fair_gmm.h"     // IWYU pragma: export
#include "baselines/fair_swap.h"    // IWYU pragma: export
#include "baselines/max_sum_greedy.h"  // IWYU pragma: export
#include "data/csv.h"               // IWYU pragma: export
#include "data/dataset.h"           // IWYU pragma: export
#include "data/simulated.h"         // IWYU pragma: export
#include "data/synthetic.h"         // IWYU pragma: export
#include "geo/metric.h"             // IWYU pragma: export
#include "geo/point_buffer.h"       // IWYU pragma: export
#include "geo/point_buffer_io.h"    // IWYU pragma: export
#include "geo/simd/kernel_dispatch.h"  // IWYU pragma: export
#include "util/binary_io.h"         // IWYU pragma: export
#include "util/status.h"            // IWYU pragma: export

#endif  // FDM_FDM_H_
