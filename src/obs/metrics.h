#ifndef FDM_OBS_METRICS_H_
#define FDM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"
#include "util/timer.h"

namespace fdm::obs {

/// One slow-operation postmortem record. A histogram registered with a
/// non-zero threshold journals every sample at or above it into a
/// fixed-size ring (`MetricsRegistry::SlowOps`), so the last ~256 slow
/// ops survive for inspection with the context a latency bucket alone
/// cannot carry: which op, against which session, at what state version.
struct SlowOp {
  uint64_t seq = 0;            // monotone capture order, process-wide
  std::string metric;          // histogram that crossed its threshold
  std::string context;         // caller-supplied op / session tag
  uint64_t duration_ns = 0;
  uint64_t state_version = 0;  // sink state version at capture; 0 = n/a
};

/// Increment a sharded cell the caller already holds. Owner-only relaxed
/// load+store rather than fetch_add: each cell is written by exactly one
/// thread, so this compiles to a plain uncontended memory increment
/// (~1-2ns) with no lock prefix.
inline void BumpCell(std::atomic<uint64_t>& cell, uint64_t delta = 1) {
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

#ifndef FDM_NO_METRICS

inline constexpr bool kMetricsEnabled = true;

class MetricsRegistry;

/// Monotone counter with per-thread sharded cells: `Add` touches only the
/// calling thread's cell and `Value` folds all cells on scrape. Cells are
/// owned by the counter and never freed — a thread that exits leaves its
/// final partial sum behind for every later scrape, which keeps `Value`
/// correct with no thread-exit hook and no fencing on the hot path. The
/// leak is bounded by threads-ever × metrics-touched × one cache line.
class Counter {
 public:
  void Add(uint64_t delta) { BumpCell(ThreadLocalCell(), delta); }
  void Inc() { Add(1); }

  /// Folds every cell ever created (relaxed reads; monitoring-grade —
  /// concurrent writers may or may not be included).
  uint64_t Value() const;

  /// The calling thread's cell, created and registered on first use.
  /// Ultra-hot call sites cache the returned reference in a
  /// function-local `static thread_local` so the steady-state cost is
  /// one init-guard branch plus the uncontended increment.
  std::atomic<uint64_t>& ThreadLocalCell();

 private:
  friend class MetricsRegistry;
  struct Cell {
    // Own cache line per cell: each is written by exactly one thread.
    alignas(64) std::atomic<uint64_t> value{0};
  };
  explicit Counter(uint32_t id) : id_(id) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const uint32_t id_;  // slot in each thread's cell-pointer table
  mutable std::mutex cells_mu_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// Last-write-wins scalar (queue depth, resident sessions, config
/// values). Gauges are set at state transitions, not on hot paths, so a
/// single shared atomic is enough.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram over per-thread sharded bucket arrays; scrape
/// merges the shards element-wise into a `HistogramSnapshot` (the merge
/// is deterministic — any shard order yields identical buckets). The
/// scraped `count` is derived from the bucket sum so each reported
/// quantile is consistent with its own total; the value `sum` cell is
/// read separately and may trail by in-flight records.
class Histogram {
 public:
  void Record(uint64_t v) { RecordWithContext(v, {}, 0); }

  /// As `Record`; additionally journals a SlowOp carrying `context` and
  /// `state_version` when the histogram has a threshold and `v` meets it.
  void RecordWithContext(uint64_t v, std::string_view context,
                         uint64_t state_version);

  HistogramSnapshot Snapshot() const;

  uint64_t slow_threshold_ns() const { return slow_threshold_ns_; }

 private:
  friend class MetricsRegistry;
  struct Cell {
    std::array<std::atomic<uint64_t>, HistogramSnapshot::kBucketCount>
        counts{};
    std::atomic<uint64_t> sum{0};
  };
  Histogram(uint32_t id, std::string name, uint64_t slow_threshold_ns,
            MetricsRegistry* registry)
      : id_(id),
        name_(std::move(name)),
        slow_threshold_ns_(slow_threshold_ns),
        registry_(registry) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  Cell& ThreadLocalCell();

  const uint32_t id_;
  const std::string name_;
  const uint64_t slow_threshold_ns_;
  MetricsRegistry* const registry_;
  mutable std::mutex cells_mu_;
  std::vector<std::unique_ptr<Cell>> cells_;
};

/// Times a scope and records elapsed nanoseconds into `hist` on
/// destruction. `context`/`state_version` flow into the slow-op journal
/// if the sample crosses the histogram's threshold; `context` must
/// outlive the timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist, std::string_view context = {},
                       uint64_t state_version = 0)
      : hist_(hist), context_(context), state_version_(state_version) {}
  ~ScopedTimer() {
    hist_.RecordWithContext(static_cast<uint64_t>(timer_.ElapsedNanos()),
                            context_, state_version_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  std::string_view context_;
  uint64_t state_version_;
  Timer timer_;
};

/// Process-wide registry of named metrics. `Global()` is a leaked
/// singleton so metrics registered from static initializers and touched
/// by detached threads at exit are both safe. Metric objects live for
/// the process lifetime — references returned by the getters never
/// dangle and are safe to cache in function-local statics.
///
/// Naming scheme: `fdm_<layer>_<what>[_total|_ns|_bytes]` — `_total` for
/// monotone counters, `_ns` for nanosecond histograms, `_bytes` for byte
/// counters; e.g. `fdm_wal_fsync_ns`, `fdm_ingest_points_kept_total`.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Find-or-create by name; `help` is recorded on first registration.
  Counter& GetCounter(std::string_view name, std::string_view help);
  Gauge& GetGauge(std::string_view name, std::string_view help);
  /// `slow_threshold_ns` > 0 enables slow-op journaling for this
  /// histogram (first registration wins).
  Histogram& GetHistogram(std::string_view name, std::string_view help,
                          uint64_t slow_threshold_ns = 0);

  /// Key→value annotations (active kernel target, build flags) rendered
  /// as `name{value="..."} 1` info-style series.
  void SetInfo(std::string_view name, std::string_view value);

  /// Prometheus text exposition: HELP/TYPE lines, counters and gauges as
  /// scalars, histograms as summary-style quantile series plus _sum and
  /// _count.
  std::string RenderPrometheus() const;

  /// The same scrape as a single-line JSON object (counters, gauges,
  /// histogram quantiles, info, slow-op ring).
  std::string RenderJson() const;

  /// Snapshot of the slow-op ring, oldest first.
  std::vector<SlowOp> SlowOps() const;

  void JournalSlowOp(std::string_view metric, std::string_view context,
                     uint64_t duration_ns, uint64_t state_version);

 private:
  MetricsRegistry() = default;

  static constexpr size_t kSlowOpRingCapacity = 256;

  mutable std::mutex mu_;  // metric maps + infos
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> helps_;
  std::map<std::string, std::string, std::less<>> infos_;
  std::atomic<uint32_t> next_id_{0};

  mutable std::mutex slow_mu_;
  std::vector<SlowOp> slow_ring_;  // capped at kSlowOpRingCapacity
  size_t slow_next_ = 0;           // ring cursor once at capacity
  uint64_t slow_seq_ = 0;
};

#else  // FDM_NO_METRICS

// Kill-switch build: the entire registry API collapses to no-op inline
// stubs so instrumented call sites compile unchanged and the optimizer
// deletes them. The stub ScopedTimer never reads the clock. Call sites
// needing feature parity with real data (per-cache solve stats, bench
// reports) use the plain HistogramSnapshot, which stays real.

inline constexpr bool kMetricsEnabled = false;

class Counter {
 public:
  void Add(uint64_t) {}
  void Inc() {}
  uint64_t Value() const { return 0; }

 private:
  friend class MetricsRegistry;
  Counter() = default;
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  double Value() const { return 0.0; }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
};

class Histogram {
 public:
  void Record(uint64_t) {}
  void RecordWithContext(uint64_t, std::string_view, uint64_t) {}
  HistogramSnapshot Snapshot() const { return {}; }
  uint64_t slow_threshold_ns() const { return 0; }

 private:
  friend class MetricsRegistry;
  Histogram() = default;
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram&, std::string_view = {}, uint64_t = 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // All names alias one inert instance per metric kind; no state is kept.
  Counter& GetCounter(std::string_view, std::string_view) { return counter_; }
  Gauge& GetGauge(std::string_view, std::string_view) { return gauge_; }
  Histogram& GetHistogram(std::string_view, std::string_view,
                          uint64_t = 0) {
    return histogram_;
  }
  void SetInfo(std::string_view, std::string_view) {}
  std::string RenderPrometheus() const {
    return "# metrics disabled (FDM_NO_METRICS build)\n";
  }
  std::string RenderJson() const { return "{\"metrics_enabled\":false}"; }
  std::vector<SlowOp> SlowOps() const { return {}; }
  void JournalSlowOp(std::string_view, std::string_view, uint64_t, uint64_t) {}

 private:
  MetricsRegistry() = default;
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // FDM_NO_METRICS

}  // namespace fdm::obs

#endif  // FDM_OBS_METRICS_H_
