#include "obs/metrics_dump.h"

#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <utility>

#include "obs/metrics.h"

namespace fdm::obs {

MetricsDumper::MetricsDumper(std::string path, int period_ms)
    : path_(std::move(path)) {
  if (period_ms > 0) {
    thread_ = std::thread([this, period_ms] {
      std::unique_lock<std::mutex> lock(mu_);
      while (!cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                           [this] { return stopping_; })) {
        DumpOnce();
      }
    });
  }
}

MetricsDumper::~MetricsDumper() {
  if (thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }
  DumpOnce();
}

void MetricsDumper::DumpOnce() const {
  const std::string text = MetricsRegistry::Global().RenderPrometheus();
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << text;
    if (!out.flush()) return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
}

Result<std::unique_ptr<MetricsDumper>> MakeMetricsDumper(
    const std::string& spec) {
  if (spec.empty()) return std::unique_ptr<MetricsDumper>();
  std::string path = spec;
  int period_ms = 0;
  const size_t comma = spec.rfind(',');
  if (comma != std::string::npos && comma + 1 < spec.size()) {
    bool digits = true;
    for (size_t i = comma + 1; i < spec.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(spec[i]))) {
        digits = false;
        break;
      }
    }
    if (digits) {
      // A digit suffix is a period. Bound it BEFORE converting: the old
      // `std::stoi` path threw std::out_of_range on a 20-digit period and
      // took the whole process down at startup.
      const std::string digits_text = spec.substr(comma + 1);
      if (digits_text.size() > 9) {
        return Status::InvalidArgument(
            "metrics-dump period out of range: " + digits_text);
      }
      int64_t parsed = 0;
      for (const char c : digits_text) parsed = parsed * 10 + (c - '0');
      if (parsed <= 0) {
        return Status::InvalidArgument(
            "metrics-dump period must be positive: " + digits_text);
      }
      path = spec.substr(0, comma);
      if (path.empty()) {
        return Status::InvalidArgument(
            "metrics-dump spec has an empty path: " + spec);
      }
      period_ms = static_cast<int>(parsed);
    }
  }
  return std::make_unique<MetricsDumper>(path, period_ms);
}

}  // namespace fdm::obs
