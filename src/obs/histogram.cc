#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/binary_io.h"

namespace fdm::obs {

uint64_t HistogramSnapshot::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const uint32_t e = static_cast<uint32_t>(index / kSubBuckets) + kSubBits - 1;
  const uint64_t sub = index % kSubBuckets;
  return (static_cast<uint64_t>(kSubBuckets) + sub) << (e - kSubBits);
}

uint64_t HistogramSnapshot::BucketUpperBound(size_t index) {
  if (index + 1 >= kBucketCount) return std::numeric_limits<uint64_t>::max();
  return BucketLowerBound(index + 1) - 1;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (size_t i = 0; i < kBucketCount; ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
}

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th quantile, 1-based: the smallest bucket whose
  // cumulative count reaches it. ceil() keeps p0 -> first value and
  // p100 -> last value exact.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return Max();
}

uint64_t HistogramSnapshot::Max() const {
  for (size_t i = kBucketCount; i-- > 0;) {
    if (counts[i] != 0) return BucketUpperBound(i);
  }
  return 0;
}

void HistogramSnapshot::WriteTo(SnapshotWriter& writer) const {
  writer.WriteU64(count);
  writer.WriteU64(sum);
  uint32_t nonzero = 0;
  for (uint64_t c : counts) nonzero += (c != 0);
  writer.WriteU32(nonzero);
  for (size_t i = 0; i < kBucketCount; ++i) {
    if (counts[i] == 0) continue;
    writer.WriteU32(static_cast<uint32_t>(i));
    writer.WriteU64(counts[i]);
  }
}

bool HistogramSnapshot::ReadFrom(SnapshotReader& reader) {
  *this = HistogramSnapshot{};
  const uint64_t count_in = reader.ReadU64();
  const uint64_t sum_in = reader.ReadU64();
  const uint32_t nonzero = reader.ReadU32();
  if (!reader.ok() || nonzero > kBucketCount) return false;
  uint64_t bucket_total = 0;
  for (uint32_t i = 0; i < nonzero; ++i) {
    const uint32_t index = reader.ReadU32();
    const uint64_t c = reader.ReadU64();
    if (!reader.ok() || index >= kBucketCount) {
      *this = HistogramSnapshot{};
      return false;
    }
    counts[index] = c;
    bucket_total += c;
  }
  if (bucket_total != count_in) {
    *this = HistogramSnapshot{};
    return false;
  }
  count = count_in;
  sum = sum_in;
  return true;
}

}  // namespace fdm::obs
