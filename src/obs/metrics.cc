#include "obs/metrics.h"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <iterator>
#include <utility>

namespace fdm::obs {

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metrics may be touched from static initializers
  // and from threads still draining at process exit.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

#ifndef FDM_NO_METRICS

namespace {

// Per-thread table of cell pointers, indexed by metric id. Slots are
// raw pointers into cells owned (and never freed) by the metric objects,
// which themselves live in the leaked registry — nothing here dangles,
// even after this thread's table is destroyed at thread exit.
thread_local std::vector<void*> t_cells;

void*& CellSlot(uint32_t id) {
  if (t_cells.size() <= id) t_cells.resize(id + 1, nullptr);
  return t_cells[id];
}

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};
constexpr const char* kQuantileLabels[] = {"0.5", "0.9", "0.99", "0.999"};

}  // namespace

std::atomic<uint64_t>& Counter::ThreadLocalCell() {
  void*& slot = CellSlot(id_);
  if (slot == nullptr) {
    auto cell = std::make_unique<Cell>();
    slot = &cell->value;
    std::lock_guard<std::mutex> lock(cells_mu_);
    cells_.push_back(std::move(cell));
  }
  return *static_cast<std::atomic<uint64_t>*>(slot);
}

uint64_t Counter::Value() const {
  std::lock_guard<std::mutex> lock(cells_mu_);
  uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->value.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Cell& Histogram::ThreadLocalCell() {
  void*& slot = CellSlot(id_);
  if (slot == nullptr) {
    auto cell = std::make_unique<Cell>();
    slot = cell.get();
    std::lock_guard<std::mutex> lock(cells_mu_);
    cells_.push_back(std::move(cell));
  }
  return *static_cast<Cell*>(slot);
}

void Histogram::RecordWithContext(uint64_t v, std::string_view context,
                                  uint64_t state_version) {
  Cell& cell = ThreadLocalCell();
  BumpCell(cell.counts[HistogramSnapshot::BucketIndex(v)]);
  BumpCell(cell.sum, v);
  if (slow_threshold_ns_ != 0 && v >= slow_threshold_ns_) {
    registry_->JournalSlowOp(name_, context, v, state_version);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  std::lock_guard<std::mutex> lock(cells_mu_);
  for (const auto& cell : cells_) {
    for (size_t i = 0; i < HistogramSnapshot::kBucketCount; ++i) {
      out.counts[i] += cell->counts[i].load(std::memory_order_relaxed);
    }
    out.sum += cell->sum.load(std::memory_order_relaxed);
  }
  // Derive the total from the buckets so every quantile is consistent
  // with its own count; `sum` is read separately and may trail in-flight
  // records by a sample — monitoring-grade, documented as such.
  for (uint64_t c : out.counts) out.count += c;
  return out;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(
                          next_id_.fetch_add(1, std::memory_order_relaxed))))
             .first;
    helps_.emplace(std::string(name), std::string(help));
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
    helps_.emplace(std::string(name), std::string(help));
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         uint64_t slow_threshold_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(
                          next_id_.fetch_add(1, std::memory_order_relaxed),
                          std::string(name), slow_threshold_ns, this)))
             .first;
    helps_.emplace(std::string(name), std::string(help));
  }
  return *it->second;
}

void MetricsRegistry::SetInfo(std::string_view name, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  infos_[std::string(name)] = std::string(value);
}

void MetricsRegistry::JournalSlowOp(std::string_view metric,
                                    std::string_view context,
                                    uint64_t duration_ns,
                                    uint64_t state_version) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  SlowOp op;
  op.seq = ++slow_seq_;
  op.metric = std::string(metric);
  op.context = std::string(context);
  op.duration_ns = duration_ns;
  op.state_version = state_version;
  if (slow_ring_.size() < kSlowOpRingCapacity) {
    slow_ring_.push_back(std::move(op));
  } else {
    slow_ring_[slow_next_] = std::move(op);
    slow_next_ = (slow_next_ + 1) % kSlowOpRingCapacity;
  }
}

std::vector<SlowOp> MetricsRegistry::SlowOps() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  std::vector<SlowOp> out;
  out.reserve(slow_ring_.size());
  // Oldest first: once the ring wraps, slow_next_ points at the oldest.
  for (size_t i = 0; i < slow_ring_.size(); ++i) {
    out.push_back(slow_ring_[(slow_next_ + i) % slow_ring_.size()]);
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  auto help_for = [&](const std::string& name) -> const std::string& {
    static const std::string kEmpty;
    auto it = helps_.find(name);
    return it == helps_.end() ? kEmpty : it->second;
  };
  for (const auto& [name, counter] : counters_) {
    out += "# HELP " + name + " " + help_for(name) + "\n";
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    AppendU64(out, counter->Value());
    out += "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# HELP " + name + " " + help_for(name) + "\n";
    out += "# TYPE " + name + " gauge\n";
    out += name + " ";
    AppendDouble(out, gauge->Value());
    out += "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    out += "# HELP " + name + " " + help_for(name) + "\n";
    out += "# TYPE " + name + " summary\n";
    for (size_t q = 0; q < std::size(kQuantiles); ++q) {
      out += name + "{quantile=\"" + kQuantileLabels[q] + "\"} ";
      AppendU64(out, snap.Percentile(kQuantiles[q]));
      out += "\n";
    }
    out += name + "_sum ";
    AppendU64(out, snap.sum);
    out += "\n";
    out += name + "_count ";
    AppendU64(out, snap.count);
    out += "\n";
  }
  for (const auto& [name, value] : infos_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + "{value=\"" + value + "\"} 1\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::string out = "{\"metrics_enabled\":true,\"counters\":{";
  std::lock_guard<std::mutex> lock(mu_);
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":";
    AppendU64(out, counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":";
    AppendDouble(out, gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":{\"count\":";
    AppendU64(out, snap.count);
    out += ",\"sum\":";
    AppendU64(out, snap.sum);
    out += ",\"mean\":";
    AppendDouble(out, snap.Mean());
    out += ",\"p50\":";
    AppendU64(out, snap.Percentile(0.5));
    out += ",\"p90\":";
    AppendU64(out, snap.Percentile(0.9));
    out += ",\"p99\":";
    AppendU64(out, snap.Percentile(0.99));
    out += ",\"max\":";
    AppendU64(out, snap.Max());
    out += "}";
  }
  out += "},\"info\":{";
  first = true;
  for (const auto& [name, value] : infos_) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    AppendJsonEscaped(out, name);
    out += "\":\"";
    AppendJsonEscaped(out, value);
    out += "\"";
  }
  out += "},\"slow_ops\":[";
  {
    const std::vector<SlowOp> ops = SlowOps();
    first = true;
    for (const SlowOp& op : ops) {
      if (!first) out += ",";
      first = false;
      out += "{\"seq\":";
      AppendU64(out, op.seq);
      out += ",\"metric\":\"";
      AppendJsonEscaped(out, op.metric);
      out += "\",\"context\":\"";
      AppendJsonEscaped(out, op.context);
      out += "\",\"duration_ns\":";
      AppendU64(out, op.duration_ns);
      out += ",\"state_version\":";
      AppendU64(out, op.state_version);
      out += "}";
    }
  }
  out += "]}";
  return out;
}

#endif  // FDM_NO_METRICS

}  // namespace fdm::obs
