#ifndef FDM_OBS_HISTOGRAM_H_
#define FDM_OBS_HISTOGRAM_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace fdm {
class SnapshotReader;
class SnapshotWriter;
}  // namespace fdm

namespace fdm::obs {

/// Plain (non-atomic) log-bucketed histogram with a fixed, deterministic
/// bucket layout — the one percentile implementation shared by the runtime
/// metrics registry (`obs/metrics.h`), the per-cache solve-latency stats,
/// the benches, and `RunResult`. A p99 printed by `micro_replica` and one
/// scraped from a serving METRICS reply mean exactly the same thing.
///
/// Layout (HDR-style log-linear): values are non-negative integers
/// (nanoseconds, bytes, records). Values below 8 get one exact bucket
/// each; from 8 up, every power-of-two octave splits into 8 sub-buckets
/// (`kSubBits = 3`), so a recorded value lands in a bucket whose width is
/// at most 1/8 of its magnitude — percentiles carry ≤ 12.5% relative
/// error, constant across twelve orders of magnitude, in 496 buckets.
/// The layout is a pure function of the value with no tuning parameters,
/// which is what makes merges deterministic: histograms recorded by
/// different threads (the registry's per-thread shards), processes, or PR
/// generations combine by element-wise addition, in any order, to the
/// same result.
///
/// This type is real in *both* metric configurations — `FDM_NO_METRICS`
/// stubs out the sharded registry, not the math — so per-session solve
/// percentiles and bench reports keep working with the kill switch on.
struct HistogramSnapshot {
  /// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per octave.
  static constexpr uint32_t kSubBits = 3;
  static constexpr uint32_t kSubBuckets = 1u << kSubBits;
  /// Indices 0..7 are exact; octaves e = 3..63 contribute 8 buckets each.
  static constexpr size_t kBucketCount =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;
  static_assert(kBucketCount == 496);

  std::array<uint64_t, kBucketCount> counts{};
  uint64_t count = 0;
  uint64_t sum = 0;

  /// The bucket `v` lands in. Exact for `v < 8`; otherwise
  /// `e = bit_width(v) - 1`, `sub = the 3 bits after the leading one`,
  /// index `(e - 2) * 8 + sub`. Branch-light and allocation-free — safe
  /// for hot paths.
  static size_t BucketIndex(uint64_t v) {
    if (v < kSubBuckets) return static_cast<size_t>(v);
    const uint32_t e = static_cast<uint32_t>(std::bit_width(v)) - 1;
    const uint64_t sub = (v >> (e - kSubBits)) & (kSubBuckets - 1);
    return static_cast<size_t>((e - kSubBits + 1) * kSubBuckets + sub);
  }

  /// Smallest value mapping to bucket `index`.
  static uint64_t BucketLowerBound(size_t index);
  /// Largest value mapping to bucket `index` (inclusive).
  static uint64_t BucketUpperBound(size_t index);

  void Record(uint64_t v) {
    ++counts[BucketIndex(v)];
    ++count;
    sum += v;
  }

  /// Element-wise addition; deterministic in any merge order.
  void Merge(const HistogramSnapshot& other);

  /// Upper bound of the bucket holding the q-th quantile (q in [0, 1]);
  /// 0 when empty. Reported values are thus conservative (never below the
  /// true quantile) and exact below 8.
  uint64_t Percentile(double q) const;

  /// Upper bound of the highest non-empty bucket; 0 when empty.
  uint64_t Max() const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Sparse serialization (count, sum, non-zero buckets) into the
  /// snapshot framing — the session-snapshot stats footer and the
  /// round-trip tests use this.
  void WriteTo(SnapshotWriter& writer) const;
  /// Restores from `reader`; false (and `*this` zeroed) on malformed
  /// payload. Leaves the reader's sticky status to the caller.
  bool ReadFrom(SnapshotReader& reader);
};

}  // namespace fdm::obs

#endif  // FDM_OBS_HISTOGRAM_H_
