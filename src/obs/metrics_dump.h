#ifndef FDM_OBS_METRICS_DUMP_H_
#define FDM_OBS_METRICS_DUMP_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "util/status.h"

namespace fdm::obs {

/// Writes the Prometheus rendering of the global registry to a stable
/// path, atomically (write tmp, rename over) so an external scraper never
/// reads a half-written file. With a period, a background thread
/// refreshes the file; in every mode the destructor writes one final
/// dump, so even a period-less dumper leaves a complete end-of-run
/// snapshot.
class MetricsDumper {
 public:
  MetricsDumper(std::string path, int period_ms);
  ~MetricsDumper();

  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

 private:
  void DumpOnce() const;

  const std::string path_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

/// Parses a `PATH[,PERIOD_MS]` metrics-dump spec (the serving CLI's
/// `--metrics-dump` flag). The period is split on the last comma only
/// when everything after it is digits, so paths containing commas still
/// work un-escaped; a digit run that does not fit a plausible period
/// (more than 9 digits, i.e. over ~11 days) is an error, not a path —
/// `std::stoi`'s uncaught `std::out_of_range` on exactly that input is
/// how this function earned its Status return. An empty spec yields a
/// null dumper (the flag was absent).
Result<std::unique_ptr<MetricsDumper>> MakeMetricsDumper(
    const std::string& spec);

}  // namespace fdm::obs

#endif  // FDM_OBS_METRICS_DUMP_H_
