// Sliding-window fraud-review sampling: an analyst team reviews a fair,
// diverse panel of recent transactions. "Recent" matters — behaviour
// drifts, so the panel must only draw from the last `window` transactions
// — and "fair" means both card-present and card-not-present transactions
// get fixed review slots regardless of their traffic share.
//
// Demonstrates the SlidingWindow<Sfdm2> extension (the paper's future-work
// setting): solutions always come from the current window, and the panel
// tracks a mid-stream distribution shift within one window length.

#include <cstdio>
#include <vector>

#include "core/diversity.h"
#include "core/sfdm2.h"
#include "core/sliding_window.h"
#include "util/rng.h"

namespace {

/// Transaction features: amount (log-scale), hour-of-day (cyclic x2),
/// merchant-risk score. A drift at half-time moves the whole distribution.
struct TransactionStream {
  explicit TransactionStream(uint64_t seed) : rng(seed) {}

  fdm::StreamPoint Next(bool drifted) {
    group = rng.NextDouble() < 0.8 ? 0 : 1;  // 80% card-present
    const double amount = drifted ? 6.5 + rng.NextGaussian()
                                  : 3.0 + 0.8 * rng.NextGaussian();
    const double hour = rng.NextDouble(0, 24);
    coords[0] = amount;
    coords[1] = std::cos(hour / 24.0 * 6.283185307);
    coords[2] = std::sin(hour / 24.0 * 6.283185307);
    coords[3] = (drifted ? 0.7 : 0.2) + 0.1 * rng.NextGaussian();
    return fdm::StreamPoint{next_id++, group, std::span<const double>(coords)};
  }

  fdm::Rng rng;
  int64_t next_id = 0;
  int32_t group = 0;
  double coords[4] = {};
};

}  // namespace

int main() {
  // Review panel: 8 transactions per shift, 4 from each channel.
  fdm::FairnessConstraint constraint;
  constraint.quotas = {4, 4};

  fdm::StreamingOptions streaming;
  streaming.epsilon = 0.1;
  streaming.d_min = 0.01;
  streaming.d_max = 30.0;

  const int64_t window = 5000;  // "the last 5000 transactions"
  auto panel = fdm::SlidingWindow<fdm::Sfdm2>::Create(
      window, /*checkpoints=*/5, [&] {
        return fdm::Sfdm2::Create(constraint, 4, fdm::MetricKind::kEuclidean,
                                  streaming);
      });
  if (!panel.ok()) {
    std::fprintf(stderr, "%s\n", panel.status().ToString().c_str());
    return 1;
  }

  TransactionStream stream(2026);
  constexpr int kTotal = 30000;
  for (int i = 0; i < kTotal; ++i) {
    const bool drifted = i >= kTotal / 2;  // behaviour shift at half-time
    panel->Observe(stream.Next(drifted));
    if (!panel->error().ok()) return 1;
    if ((i + 1) % 5000 == 0) {
      const auto solution = panel->Solve();
      std::printf("after %5d txns (replicas=%zu, stored=%zu): ", i + 1,
                  panel->live_replicas(), panel->StoredElements());
      if (!solution.ok()) {
        std::printf("panel pending (%s)\n",
                    solution.status().ToString().c_str());
        continue;
      }
      // Average amount of the panel reveals whether it tracks the drift.
      double mean_amount = 0.0;
      for (size_t p = 0; p < solution->points.size(); ++p) {
        mean_amount += solution->points.CoordsAt(p)[0];
      }
      mean_amount /= static_cast<double>(solution->points.size());
      const std::vector<int> counts = fdm::GroupCounts(solution->points, 2);
      std::printf("div=%.3f, mean log-amount=%.2f, present/absent=%d/%d\n",
                  solution->diversity, mean_amount, counts[0], counts[1]);
    }
  }

  std::printf("\nThe panel's mean log-amount jumps from ~3 to ~6.5 within "
              "one window of the drift — stale transactions age out, and "
              "the 4/4 channel split holds throughout.\n");
  return 0;
}
