// Census summarization with demographic fairness: produce a k-record
// panel of a (simulated) census that is maximally diverse in attribute
// space while guaranteeing proportional representation of the seven age
// brackets — and compare it against the unconstrained summary, which
// over-represents outlier demographics.
//
// This is the paper's data-summarization motivation end to end: the fair
// summary costs a little diversity but fixes the group imbalance of the
// unconstrained one.

#include <cstdio>
#include <vector>

#include "core/diversity.h"
#include "core/gmm.h"
#include "core/sfdm2.h"
#include "data/simulated.h"
#include "harness/experiment.h"

int main() {
  // 1/50-scale simulated 1990 US Census (25 attributes, Manhattan
  // distance), grouped into 7 age brackets.
  const fdm::Dataset census =
      fdm::SimulatedCensus(fdm::CensusGrouping::kAge, /*seed=*/3, 50000);
  const auto group_sizes = census.GroupSizes();
  const int k = 21;

  // Unconstrained summary: classic GMM.
  const std::vector<size_t> unconstrained =
      fdm::GreedyGmm(census, static_cast<size_t>(k));
  std::vector<int> counts(7, 0);
  for (const size_t row : unconstrained) {
    ++counts[static_cast<size_t>(census.GroupOf(row))];
  }

  // Fair summary: proportional quotas + SFDM2 over one pass.
  const auto constraint =
      fdm::ProportionalRepresentation(k, group_sizes);
  if (!constraint.ok()) {
    std::fprintf(stderr, "%s\n", constraint.status().ToString().c_str());
    return 1;
  }
  fdm::RunConfig config;
  config.algorithm = fdm::AlgorithmKind::kSfdm2;
  config.constraint = constraint.value();
  config.epsilon = 0.1;
  config.bounds = fdm::BoundsForExperiments(census);
  const fdm::RunResult fair = fdm::RunAlgorithm(census, config);
  if (!fair.ok) {
    std::fprintf(stderr, "fair summary failed: %s\n", fair.error.c_str());
    return 1;
  }

  std::printf("population by age bracket (n=%zu):\n ", census.size());
  for (int g = 0; g < 7; ++g) {
    std::printf(" age%d=%.1f%%", g,
                100.0 * static_cast<double>(group_sizes[static_cast<size_t>(g)]) /
                    static_cast<double>(census.size()));
  }

  std::printf("\n\nunconstrained GMM summary (diversity %.3f):\n ",
              fdm::MinPairwiseDistance(census, unconstrained));
  for (int g = 0; g < 7; ++g) {
    std::printf(" age%d=%d", g, counts[static_cast<size_t>(g)]);
  }

  std::vector<int> fair_counts(7, 0);
  for (const int64_t id : fair.selected_ids) {
    ++fair_counts[static_cast<size_t>(
        census.GroupOf(static_cast<size_t>(id)))];
  }
  std::printf("\n\nfair SFDM2 summary (diversity %.3f, quotas from "
              "proportional representation):\n ",
              fair.diversity);
  for (int g = 0; g < 7; ++g) {
    std::printf(" age%d=%d", g, fair_counts[static_cast<size_t>(g)]);
  }
  std::printf("\n\nstreaming cost: %.2f ms/element average update, %zu "
              "elements stored (%.3f%% of the dataset)\n",
              fair.avg_update_ms, fair.stored_elements,
              100.0 * static_cast<double>(fair.stored_elements) /
                  static_cast<double>(census.size()));
  return 0;
}
