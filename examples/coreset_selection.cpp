// Diverse training-subset selection for machine learning: pick a small,
// diverse, label-balanced subset of a large labelled dataset to train on —
// the feature/subset-selection use case from the paper's introduction
// ("selecting diverse features or subsets can lead to better balance
// between efficiency and accuracy").
//
// A 1-nearest-neighbor classifier trained on the k-point subset is
// evaluated on held-out data under three selection policies:
//   random    — uniform sample (baseline),
//   diverse   — GMM, ignores labels (crowds outliers, may starve a class),
//   fair+div  — SFDM2 with equal per-class quotas.
//
// Expected outcome: fair+diverse beats diversity-only selection on overall
// accuracy (GMM chases outliers) and beats random on *worst-class*
// accuracy — with skewed classes, random sampling under-represents rare
// classes while the quota guarantees every class spread-out prototypes.

#include <cstdio>
#include <vector>

#include "core/gmm.h"
#include "core/sfdm2.h"
#include "data/synthetic.h"
#include "harness/experiment.h"
#include "util/rng.h"

namespace {

// 1-NN accuracy of `train_rows` (with the dataset's own groups as labels)
// on `test`: overall and for the worst-served class.
struct NnScores {
  double overall = 0.0;
  double worst_class = 0.0;
};

NnScores OneNnAccuracy(const fdm::Dataset& train,
                       const std::vector<size_t>& train_rows,
                       const fdm::Dataset& test) {
  const fdm::Metric metric = train.metric();
  std::vector<size_t> correct(4, 0);
  std::vector<size_t> total(4, 0);
  for (size_t t = 0; t < test.size(); ++t) {
    double best = 1e300;
    int32_t label = -1;
    for (const size_t r : train_rows) {
      const double d = metric(test.Point(t), train.Point(r));
      if (d < best) {
        best = d;
        label = train.GroupOf(r);
      }
    }
    const size_t cls = static_cast<size_t>(test.GroupOf(t));
    ++total[cls];
    if (label == test.GroupOf(t)) ++correct[cls];
  }
  NnScores scores;
  scores.worst_class = 1.0;
  size_t all_correct = 0;
  for (size_t c = 0; c < 4; ++c) {
    all_correct += correct[c];
    if (total[c] > 0) {
      scores.worst_class = std::min(
          scores.worst_class, static_cast<double>(correct[c]) /
                                  static_cast<double>(total[c]));
    }
  }
  scores.overall =
      static_cast<double>(all_correct) / static_cast<double>(test.size());
  return scores;
}

}  // namespace

namespace {

/// Labelled data with real class structure: each of 4 classes is a mixture
/// of 3 of its own Gaussian blobs, and class frequencies are skewed
/// (55/25/15/5) — the regime where label-blind selection starves the rare
/// classes and fair selection pays off.
fdm::Dataset MakeClassStructuredData(size_t n, uint64_t seed) {
  fdm::Rng rng(seed);
  // Blob centers: 4 classes x 3 blobs, drawn once from a master seed so
  // train and test share the distribution.
  fdm::Rng center_rng(999);
  double centers[4][3][2];
  for (auto& cls : centers) {
    for (auto& blob : cls) {
      blob[0] = center_rng.NextDouble(-10, 10);
      blob[1] = center_rng.NextDouble(-10, 10);
    }
  }
  const double class_probs[4] = {0.55, 0.25, 0.15, 0.05};
  fdm::Dataset ds("classes", 2, 4, fdm::MetricKind::kEuclidean);
  ds.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    int cls = 0;
    double acc = 0.0;
    for (int c = 0; c < 4; ++c) {
      acc += class_probs[c];
      if (u < acc) {
        cls = c;
        break;
      }
    }
    const auto& blob = centers[cls][rng.NextBounded(3)];
    const double p[2] = {blob[0] + 1.2 * rng.NextGaussian(),
                         blob[1] + 1.2 * rng.NextGaussian()};
    ds.Add(p, cls);
  }
  return ds;
}

}  // namespace

int main() {
  const fdm::Dataset train = MakeClassStructuredData(20000, 11);
  const fdm::Dataset test = MakeClassStructuredData(2000, 12);

  const int k = 24;

  // Policy 1: random subset.
  fdm::Rng rng(99);
  std::vector<size_t> random_rows;
  for (int i = 0; i < k; ++i) {
    random_rows.push_back(static_cast<size_t>(rng.NextBounded(train.size())));
  }

  // Policy 2: diverse but label-blind (GMM).
  const std::vector<size_t> gmm_rows =
      fdm::GreedyGmm(train, static_cast<size_t>(k));

  // Policy 3: fair + diverse (SFDM2, equal quotas per class).
  fdm::RunConfig config;
  config.algorithm = fdm::AlgorithmKind::kSfdm2;
  config.constraint = fdm::EqualRepresentation(k, 4).value();
  config.epsilon = 0.1;
  config.bounds = fdm::BoundsForExperiments(train);
  const fdm::RunResult fair = fdm::RunAlgorithm(train, config);
  if (!fair.ok) {
    std::fprintf(stderr, "fair selection failed: %s\n", fair.error.c_str());
    return 1;
  }
  std::vector<size_t> fair_rows;
  for (const int64_t id : fair.selected_ids) {
    fair_rows.push_back(static_cast<size_t>(id));
  }

  auto class_counts = [&train](const std::vector<size_t>& rows) {
    std::vector<int> counts(4, 0);
    for (const size_t r : rows) ++counts[static_cast<size_t>(train.GroupOf(r))];
    return counts;
  };

  std::printf("%-22s %-9s %-11s %s\n", "policy (k=24)", "1NN acc",
              "worst-class", "class counts");
  for (const auto& [name, rows] :
       std::vector<std::pair<std::string, const std::vector<size_t>*>>{
           {"random", &random_rows},
           {"diverse (GMM)", &gmm_rows},
           {"fair+diverse (SFDM2)", &fair_rows}}) {
    const auto counts = class_counts(*rows);
    const NnScores scores = OneNnAccuracy(train, *rows, test);
    std::printf("%-22s %-9.3f %-11.3f %d/%d/%d/%d\n", name.c_str(),
                scores.overall, scores.worst_class, counts[0], counts[1],
                counts[2], counts[3]);
  }
  return 0;
}
