// News-feed diversification: maintain a rolling "editor's picks" panel of
// k = 12 stories over an endless article stream, with balanced coverage of
// four sections (politics / tech / sports / culture).
//
// This exercises the *anytime* behaviour of the streaming API: Solve() can
// be called at any moment without disturbing the one-pass state — here
// after every "hour" of simulated arrivals — which is exactly the setting
// the paper's introduction motivates (web search / recommendation results
// that must stay diverse and fair as new content arrives).

#include <cstdio>
#include <string>
#include <vector>

#include "core/diversity.h"
#include "core/sfdm2.h"
#include "geo/point_buffer.h"
#include "util/rng.h"

namespace {

// Article embeddings: 8-dimensional topic vectors, section-dependent.
struct ArticleStream {
  explicit ArticleStream(uint64_t seed) : rng(seed) {}

  fdm::StreamPoint Next() {
    section = static_cast<int32_t>(rng.NextBounded(4));
    // Section base direction + noise: articles of a section cluster.
    for (size_t d = 0; d < kDim; ++d) {
      coords[d] = 0.15 * rng.NextGaussian();
    }
    coords[static_cast<size_t>(section) * 2] += 1.0;
    coords[static_cast<size_t>(section) * 2 + 1] += 0.5;
    return fdm::StreamPoint{next_id++, section,
                            std::span<const double>(coords)};
  }

  static constexpr size_t kDim = 8;
  fdm::Rng rng;
  int64_t next_id = 0;
  int32_t section = 0;
  double coords[kDim] = {};
};

}  // namespace

int main() {
  const char* kSections[] = {"politics", "tech", "sports", "culture"};

  // Panel of 12 stories, three per section.
  const auto constraint = fdm::EqualRepresentation(12, 4);
  if (!constraint.ok()) return 1;

  fdm::StreamingOptions streaming;
  streaming.epsilon = 0.1;
  // Embedding-space distances are known a priori for a fixed encoder; use
  // generous bounds (cheap: the ladder is logarithmic in the spread).
  streaming.d_min = 0.01;
  streaming.d_max = 8.0;

  auto algo = fdm::Sfdm2::Create(constraint.value(), ArticleStream::kDim,
                                 fdm::MetricKind::kEuclidean, streaming);
  if (!algo.ok()) {
    std::fprintf(stderr, "%s\n", algo.status().ToString().c_str());
    return 1;
  }

  ArticleStream stream(7);
  constexpr int kHours = 6;
  constexpr int kArticlesPerHour = 2000;
  for (int hour = 1; hour <= kHours; ++hour) {
    for (int i = 0; i < kArticlesPerHour; ++i) {
      algo->Observe(stream.Next());
    }
    const auto picks = algo->Solve();
    std::printf("— after hour %d (%lld articles seen, %zu stored) —\n", hour,
                static_cast<long long>(algo->ObservedElements()),
                algo->StoredElements());
    if (!picks.ok()) {
      std::printf("  panel not ready: %s\n",
                  picks.status().ToString().c_str());
      continue;
    }
    std::printf("  editor's picks: diversity=%.3f, sections:",
                picks->diversity);
    const std::vector<int> counts = fdm::GroupCounts(picks->points, 4);
    for (int s = 0; s < 4; ++s) {
      std::printf(" %s=%d", kSections[s], counts[static_cast<size_t>(s)]);
    }
    std::printf("\n");
  }

  std::printf("\nFinal panel (article ids per section):\n");
  const auto picks = algo->Solve();
  if (picks.ok()) {
    for (int s = 0; s < 4; ++s) {
      std::printf("  %-9s:", kSections[s]);
      for (size_t i = 0; i < picks->points.size(); ++i) {
        if (picks->points.GroupAt(i) == s) {
          std::printf(" #%lld",
                      static_cast<long long>(picks->points.IdAt(i)));
        }
      }
      std::printf("\n");
    }
  }
  return 0;
}
