// Quickstart: select a fair, maximally diverse subset from a data stream.
//
// Demonstrates the three steps of the public API:
//   1. define the fairness constraint (quotas per group),
//   2. feed the stream one element at a time through `Observe`,
//   3. call `Solve` for the fair max-min-diverse subset.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/diversity.h"
#include "core/sfdm2.h"
#include "data/synthetic.h"

int main() {
  // A toy population: 2-D points in ten Gaussian blobs, three demographic
  // groups assigned uniformly at random.
  fdm::BlobsOptions data_options;
  data_options.n = 5000;
  data_options.num_groups = 3;
  data_options.seed = 42;
  const fdm::Dataset dataset = fdm::MakeBlobs(data_options);

  // Step 1 — the fairness constraint: a summary of k = 9 elements, exactly
  // three from each group (equal representation).
  const auto constraint = fdm::EqualRepresentation(/*k=*/9, /*m=*/3);
  if (!constraint.ok()) {
    std::fprintf(stderr, "constraint: %s\n",
                 constraint.status().ToString().c_str());
    return 1;
  }

  // Streaming algorithms need (estimates of) the smallest and largest
  // pairwise distances to build their guess ladder.
  const fdm::DistanceBounds bounds =
      fdm::EstimateDistanceBounds(dataset, /*sample_size=*/500, /*seed=*/1);

  fdm::StreamingOptions streaming;
  streaming.epsilon = 0.1;  // approximation knob: smaller = better, slower
  streaming.d_min = bounds.min;
  streaming.d_max = bounds.max;

  auto algorithm = fdm::Sfdm2::Create(constraint.value(), dataset.dim(),
                                      dataset.metric_kind(), streaming);
  if (!algorithm.ok()) {
    std::fprintf(stderr, "create: %s\n",
                 algorithm.status().ToString().c_str());
    return 1;
  }

  // Step 2 — one pass over the stream. `At(i)` packages a row as a
  // StreamPoint; a real application would construct StreamPoints from its
  // own feed.
  for (size_t i = 0; i < dataset.size(); ++i) {
    algorithm->Observe(dataset.At(i));
  }

  // Step 3 — solve. The returned elements are owned copies: valid even
  // though the stream is gone.
  const auto solution = algorithm->Solve();
  if (!solution.ok()) {
    std::fprintf(stderr, "solve: %s\n", solution.status().ToString().c_str());
    return 1;
  }

  std::printf("selected %zu elements, diversity (min pairwise distance) = "
              "%.4f\n",
              solution->points.size(), solution->diversity);
  std::printf("stored only %zu of %zu stream elements (%.2f%%)\n\n",
              algorithm->StoredElements(), dataset.size(),
              100.0 * static_cast<double>(algorithm->StoredElements()) /
                  static_cast<double>(dataset.size()));
  std::printf("%-8s %-6s %-10s %-10s\n", "id", "group", "x", "y");
  for (size_t i = 0; i < solution->points.size(); ++i) {
    std::printf("%-8lld %-6d %-10.4f %-10.4f\n",
                static_cast<long long>(solution->points.IdAt(i)),
                solution->points.GroupAt(i), solution->points.CoordsAt(i)[0],
                solution->points.CoordsAt(i)[1]);
  }
  return 0;
}
