// Walkthrough of the durable serving layer (ISSUE 2 / README "Durable
// serving" section): a recommendation session that survives a process
// crash.
//
//  1. create a durable session from a sink spec (no dataset object — the
//     spec carries dim/metric/constraint/bounds);
//  2. stream live events into it (each is WAL-appended before it reaches
//     the sink);
//  3. snapshot mid-stream (tiny: the sink state is O(k·log∆/ε) points);
//  4. keep streaming — the tail after the snapshot lives only in the WAL;
//  5. "crash" (drop the object without snapshotting);
//  6. recover: newest snapshot + WAL tail replay, then verify the
//     recovered solution matches the uninterrupted run bit-for-bit.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "service/durable_session.h"
#include "service/sink_spec.h"

int main() {
  using namespace fdm;

  // A synthetic "user event" stream: 2-d points in two demographic groups,
  // from which the session must keep a fair, diverse panel of 6.
  BlobsOptions options;
  options.n = 4000;
  options.num_groups = 2;
  options.seed = 12;
  const Dataset events = MakeBlobs(options);
  const DistanceBounds bounds = EstimateDistanceBounds(events, 500, 1);

  const std::string spec =
      "algo=sfdm2 dim=2 quotas=3,3 dmin=" + std::to_string(bounds.min) +
      " dmax=" + std::to_string(bounds.max);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "fdm_durable_example")
          .string();
  std::filesystem::remove_all(dir);

  // Uninterrupted reference: the same sink fed the whole stream in one
  // process lifetime.
  auto reference = MakeSinkFromSpec(spec);
  if (!reference.ok()) {
    std::printf("spec error: %s\n", reference.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < events.size(); ++i) {
    (*reference)->Observe(events.At(i));
  }

  // 1–4: the durable run, interrupted by a crash after the snapshot.
  {
    auto session = DurableSession::Create(dir, spec);
    if (!session.ok()) {
      std::printf("create: %s\n", session.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < events.size() / 2; ++i) {
      if (!session->Observe(events.At(i)).ok()) return 1;
    }
    if (!session->TakeSnapshot().ok()) return 1;
    std::printf("snapshot at %lld events (%zu stored points)\n",
                static_cast<long long>(session->SnapshotSeq()),
                session->StoredElements());
    for (size_t i = events.size() / 2; i < events.size(); ++i) {
      if (!session->Observe(events.At(i)).ok()) return 1;
    }
    std::printf("streamed %lld events; %lld newest live only in the WAL\n",
                static_cast<long long>(session->ObservedElements()),
                static_cast<long long>(session->UnsnapshottedRecords()));
  }  // 5: crash — the object dies with no final snapshot

  // 6: recovery.
  auto recovered = DurableSession::Open(dir);
  if (!recovered.ok()) {
    std::printf("recover: %s\n", recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("recovered to %lld events (snapshot %lld + WAL tail)\n",
              static_cast<long long>(recovered->ObservedElements()),
              static_cast<long long>(recovered->SnapshotSeq()));

  const auto expected = (*reference)->Solve();
  const auto actual = recovered->Solve();
  if (!expected.ok() || !actual.ok()) {
    std::printf("solve failed\n");
    return 1;
  }
  const bool identical = expected->Ids() == actual->Ids() &&
                         expected->diversity == actual->diversity;
  std::printf("diversity %.6f vs uninterrupted %.6f — %s\n",
              actual->diversity, expected->diversity,
              identical ? "bit-identical" : "MISMATCH");
  std::filesystem::remove_all(dir);
  return identical ? 0 : 1;
}
